"""Engine edge cases: rescale correctness, watchers, timers, misc errors."""

import pytest

from repro.sim import (
    MS,
    US,
    Join,
    Program,
    SetSpinning,
    SimConfig,
    Sleep,
    Spawn,
    Work,
    line,
)
from repro.sim.engine import Engine
from repro.sim.errors import SimulationError
from repro.sim.hooks import ProfilerHook

L = line("e.c:1")
MB = line("e.c:2")


def test_rescale_preserves_total_cpu():
    """Interference rescaling must not lose or invent CPU time."""

    def main(t):
        def spinner(t2):
            yield SetSpinning(True)
            yield Work(L, MS(2))
            yield SetSpinning(False)
            yield Work(L, MS(1))

        def victim(t2):
            yield Work(MB, MS(4), memory_bound=True)

        a = yield Spawn(spinner)
        b = yield Spawn(victim)
        yield Join(a)
        yield Join(b)

    cfg = SimConfig(cores=4, interference_coeff=1.0)
    r = Program(main, config=cfg).run()
    # nominal CPU is exact despite the mid-chunk rescales (spawn ops cost
    # a little scheduler CPU on top)
    assert r.cpu_ns == MS(2) + MS(1) + MS(4) + 2 * cfg.spawn_cost_ns
    # the victim really was slowed while the spinner spun
    assert r.runtime_ns > MS(5)


def test_interference_scales_with_spinner_count():
    def build(n_spinners):
        def main(t):
            spinners = []
            for i in range(n_spinners):
                def s(t2):
                    yield SetSpinning(True)
                    yield Work(L, MS(5))
                    yield SetSpinning(False)
                spinners.append((yield Spawn(s)))

            def victim(t2):
                yield Work(MB, MS(2), memory_bound=True)

            v = yield Spawn(victim)
            yield Join(v)
            for s in spinners:
                yield Join(s)

        return Program(main, config=SimConfig(cores=8, interference_coeff=0.5))

    t1 = build(1).run().runtime_ns
    t3 = build(3).run().runtime_ns
    assert t3 > t1


def test_watch_line_fires_hook():
    hits = []

    class Watcher(ProfilerHook):
        def on_run_start(self, engine):
            engine.watch_line(L)

        def on_line_visit(self, thread, src):
            hits.append(src)

    def main(t):
        for _ in range(3):
            yield Work(L, US(10))
            yield Work(MB, US(10))

    Program(main).run(hook=Watcher())
    assert hits == [L, L, L]


def test_call_after_timers_fire_in_order():
    fired = []

    class TimerHook(ProfilerHook):
        def on_run_start(self, engine):
            engine.call_after(MS(2), lambda: fired.append("b"))
            engine.call_after(MS(1), lambda: fired.append("a"))
            engine.call_at(engine.now + MS(3), lambda: fired.append("c"))

    def main(t):
        yield Sleep(MS(5))

    Program(main).run(hook=TimerHook())
    assert fired == ["a", "b", "c"]


def test_call_at_in_past_clamps_to_now():
    fired = []

    class TimerHook(ProfilerHook):
        def on_run_start(self, engine):
            engine.call_at(-5, lambda: fired.append(engine.now))

    def main(t):
        yield Work(L, US(10))

    Program(main).run(hook=TimerHook())
    assert fired == [0]


def test_double_hook_install_rejected():
    eng = Engine()
    eng.install(ProfilerHook())
    with pytest.raises(SimulationError):
        eng.install(ProfilerHook())


def test_run_without_threads_rejected():
    with pytest.raises(SimulationError):
        Engine().run()


def test_unknown_op_rejected():
    def main(t):
        yield "not an op"

    with pytest.raises(SimulationError):
        Program(main).run()


def test_negative_work_rejected():
    from repro.sim.ops import Work as W

    with pytest.raises(ValueError):
        W(L, -5)


def test_spinning_flag_cleared_on_exit():
    """A thread that exits while marked spinning must not leak interference."""

    def main(t):
        def sloppy(t2):
            yield SetSpinning(True)
            yield Work(L, US(100))
            # exits without clearing the flag

        w = yield Spawn(sloppy)
        yield Join(w)
        main.engine_interference = None

    p = Program(main, config=SimConfig(interference_coeff=0.5))
    r = p.run()
    assert r.engine.interference == 0
