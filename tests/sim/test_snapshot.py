"""Snapshot/resume bit-identity properties (checkpoint fast-forward).

The core contract of :mod:`repro.sim.snapshot` is that
``restore(capture(engine))`` resumes the simulation *bit-identically*: a
session resumed from any mid-run checkpoint must produce exactly the run
result and profiler wire bytes the cold execution produces — at arbitrary
event boundaries, with an active :class:`~repro.sim.faults.FaultPlan`, with
pending stuck-lock detector timers, and across a pickle round trip (the
parallel executor ships snapshots to workers pickled).
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.apps import registry
from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.sim.clock import MS
from repro.sim.engine import Engine, SimConfig
from repro.sim.errors import SimulationError
from repro.sim.faults import FaultPlan
from repro.sim.snapshot import Recorder, SnapshotError, restore


def _build(app, seed, **kwargs):
    """Fresh (spec, program, profiler) triple for one run."""
    spec = registry.build(app, **kwargs)
    cfg = replace(CozConfig(scope=spec.scope), seed=seed)
    prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
    return spec, spec.build(seed), prof


def _fingerprint(result, prof):
    """Everything observable about a completed run."""
    return (
        result.runtime_ns,
        result.cpu_ns,
        result.profiler_cpu_ns,
        result.delay_ns,
        dict(result.progress_counts),
        result.thread_count,
        result.sample_count,
        result.events_processed,
        prof.data.to_json(),
    )


def _cold_with_snapshots(app, seed, grid, config=None, **kwargs):
    spec, program, prof = _build(app, seed, **kwargs)
    recorder = Recorder(grid=grid, keep_all=True)
    result = program.run(hook=prof, config=config, recorder=recorder)
    assert not recorder.failed, "capture disabled itself during the cold run"
    return spec, result, prof, recorder


def _resume(spec, snapshot, seed, config=None):
    # fresh program + profiler, exactly like a warm worker would build them
    cfg = replace(CozConfig(scope=spec.scope), seed=seed)
    prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
    program = spec.build(seed)
    result = program.resume(snapshot, hook=prof, config=config)
    return result, prof


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_resume_is_bit_identical_at_arbitrary_event_boundaries(seed):
    """Property: for any capture instant, resume == cold, bit for bit.

    The grid instants land between whatever events happen to straddle
    them, so each snapshot exercises a different arbitrary boundary:
    threads mid-chunk, blocked in locks/queues, samples half-batched,
    experiments in flight.
    """
    # learn the run length, then spread capture points across it
    spec, program, cold_prof = _build("example", seed, rounds=40)
    cold = program.run(hook=cold_prof)
    grid = [int(cold.runtime_ns * f) for f in (0.1, 0.25, 0.5, 0.75, 0.9)]
    spec, result, prof, recorder = _cold_with_snapshots(
        "example", seed, grid, rounds=40
    )
    want = _fingerprint(result, prof)
    assert want == _fingerprint(cold, cold_prof)
    assert len(recorder.snapshots) == len(grid)
    for snap in recorder.snapshots:
        warm, warm_prof = _resume(spec, snap, seed)
        assert _fingerprint(warm, warm_prof) == want, (
            f"resume from t={snap.when} diverged from the cold run"
        )


def test_resume_is_bit_identical_with_active_fault_plan():
    """Chaos runs checkpoint too: injected faults replay identically."""
    seed = 7
    plan = FaultPlan.chaos(seed=seed, intensity=0.5)
    spec, program, prof = _build("example", seed, rounds=40)
    config = replace(program.config, faults=plan)
    cold = program.run(hook=prof, config=config)
    grid = [int(cold.runtime_ns * f) for f in (0.3, 0.7)]
    spec, result, prof2, recorder = _cold_with_snapshots(
        "example", seed, grid, config=config, rounds=40
    )
    want = _fingerprint(result, prof2)
    for snap in recorder.snapshots:
        warm, warm_prof = _resume(spec, snap, seed, config=config)
        assert _fingerprint(warm, warm_prof) == want


def test_resume_reproduces_pending_stuck_lock_timer():
    """A snapshot straddling an armed stall carries the detector timer.

    The plan forces a stuck lock-holder; the capture instant falls after
    the stall arms but before the in-sim detector deadline, so the
    snapshot's heap holds a pending ``_fault_stall_detect`` timer.  The
    resumed run must fail with exactly the cold run's error, at exactly
    the same virtual time.
    """
    seed = 2
    plan = FaultPlan(
        seed=seed,
        stuck_lock=1.0,
        fault_window_ns=(MS(2), MS(10)),
        stall_ns=MS(500),
        stall_detect_ns=MS(40),
    )
    spec, program, prof = _build("example", seed, rounds=40)
    config = replace(program.config, faults=plan)
    # stall arms in [2ms, 10ms); detector fires <= 50ms later: capture at
    # 20ms is inside the armed-but-undetected window
    recorder = Recorder(grid=[MS(20)], keep_all=True)
    with pytest.raises(SimulationError) as cold_err:
        program.run(hook=prof, config=config, recorder=recorder)
    assert recorder.snapshots, "no checkpoint before the injected failure"
    snap = recorder.snapshots[-1]
    assert any(ev[5] == ("e", "_fault_stall_detect") for ev in snap.heap), (
        "expected a pending stall-detector timer in the captured heap"
    )
    _, program2, prof2 = _build("example", seed, rounds=40)
    with pytest.raises(SimulationError) as warm_err:
        program2.resume(snap, hook=prof2, config=config)
    assert type(warm_err.value) is type(cold_err.value)
    assert str(warm_err.value) == str(cold_err.value)


def test_snapshot_pickle_round_trip_resumes_identically():
    """Workers receive snapshots pickled; the trip must be lossless."""
    seed = 5
    spec, program, prof = _build("example", seed, rounds=40)
    cold = program.run(hook=prof)
    grid = [int(cold.runtime_ns * 0.6)]
    spec, result, prof2, recorder = _cold_with_snapshots(
        "example", seed, grid, rounds=40
    )
    snap = pickle.loads(pickle.dumps(recorder.snapshots[-1]))
    warm, warm_prof = _resume(spec, snap, seed)
    assert _fingerprint(warm, warm_prof) == _fingerprint(result, prof2)


def test_same_snapshot_resumes_twice():
    """Stored snapshots are resumed repeatedly (bench warm trials, LRU)."""
    seed = 9
    spec, program, prof = _build("example", seed, rounds=40)
    cold = program.run(hook=prof)
    grid = [int(cold.runtime_ns * 0.5)]
    spec, result, prof2, recorder = _cold_with_snapshots(
        "example", seed, grid, rounds=40
    )
    snap = recorder.snapshots[-1]
    first = _fingerprint(*_resume(spec, snap, seed))
    second = _fingerprint(*_resume(spec, snap, seed))
    assert first == second == _fingerprint(result, prof2)


def test_keep_all_false_keeps_only_the_deepest_snapshot():
    seed = 1
    spec, program, prof = _build("example", seed, rounds=40)
    cold = program.run(hook=prof)
    grid = [int(cold.runtime_ns * f) for f in (0.2, 0.5, 0.8)]
    spec2, program2, prof2 = _build("example", seed, rounds=40)
    recorder = Recorder(grid=list(grid), keep_all=False)
    program2.run(hook=prof2, recorder=recorder)
    assert len(recorder.snapshots) == 1
    # capture fires as the heap head crosses the grid point; engine.now can
    # trail the point slightly, but the kept snapshot must be the deep one
    assert recorder.snapshots[0].when > grid[-2]


def test_attach_refuses_started_engine_and_double_attach():
    _, program, prof = _build("example", 0, rounds=10)
    result = program.run(hook=prof)
    with pytest.raises(SnapshotError, match="before engine.run"):
        Recorder().attach(result.engine)

    engine = Engine(SimConfig())
    Recorder().attach(engine)
    with pytest.raises(SnapshotError, match="already has a recorder"):
        Recorder().attach(engine)


def test_attach_refuses_observers_and_unaware_hooks():
    engine = Engine(SimConfig())
    engine.observers.append(object())
    with pytest.raises(SnapshotError, match="observers"):
        Recorder().attach(engine)

    engine2 = Engine(SimConfig())
    engine2.hook = object()  # no snapshot_state/restore_state protocol
    with pytest.raises(SnapshotError, match="not snapshot-aware"):
        Recorder().attach(engine2)


def test_restore_rejects_version_mismatch():
    seed = 0
    spec, program, prof = _build("example", seed, rounds=40)
    cold = program.run(hook=prof)
    spec, result, prof2, recorder = _cold_with_snapshots(
        "example", seed, [int(cold.runtime_ns * 0.5)], rounds=40
    )
    snap = replace(recorder.snapshots[-1], version=99)
    _, program2, _ = _build("example", seed, rounds=40)
    with pytest.raises(SnapshotError, match="version"):
        restore(snap, program2)


def test_restore_into_mismatched_program_raises_not_corrupts():
    """Replaying a snapshot into the wrong program must fail loudly."""
    seed = 4
    spec, program, prof = _build("example", seed, rounds=40)
    cold = program.run(hook=prof)
    spec, result, prof2, recorder = _cold_with_snapshots(
        "example", seed, [int(cold.runtime_ns * 0.5)], rounds=40
    )
    snap = recorder.snapshots[-1]
    # different workload shape -> the op replay desynchronizes
    _, wrong_program, wrong_prof = _build("example", seed, rounds=7)
    with pytest.raises(SnapshotError):
        wrong_program.resume(snap, hook=wrong_prof)
