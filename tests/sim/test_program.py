"""Program wrapper and RunResult."""

from repro.sim import MS, Program, Progress, Work, line

L = line("p.c:1")


def test_run_result_fields():
    def main(t):
        yield Work(L, MS(2))
        yield Progress("done")

    r = Program(main, name="demo", debug_size_kb=42).run()
    assert r.runtime_ns == MS(2)
    assert r.cpu_ns == MS(2)
    assert r.delay_ns == 0
    assert r.profiler_cpu_ns == 0
    assert r.progress("done") == 1
    assert r.progress("missing") == 0
    assert r.thread_count == 1
    assert r.engine is not None


def test_program_is_reusable():
    """Each run builds a fresh engine; results are independent."""

    def main(t):
        yield Work(L, MS(1))

    p = Program(main)
    r1, r2 = p.run(), p.run()
    assert r1.runtime_ns == r2.runtime_ns == MS(1)
    assert r1.engine is not r2.engine


def test_program_exposes_metadata_to_engine():
    captured = {}

    def main(t):
        yield Work(L, 0)

    p = Program(main, name="meta", debug_size_kb=7)
    r = p.run()
    assert r.engine.program is p
