"""TraceObserver: bounded execution traces."""

from repro.sim import MS, US, Join, Program, Progress, Spawn, Work, call, line
from repro.sim.trace import TraceObserver

L = line("t.c:1")


def _program():
    def main(t):
        def worker(t2):
            def fn():
                yield Work(L, US(500))

            for _ in range(4):
                yield from call("fn", fn())
                yield Progress("tick")

        a = yield Spawn(worker, "w0")
        b = yield Spawn(worker, "w1")
        yield Join(a)
        yield Join(b)

    return Program(main)


def test_trace_records_lifecycle_and_progress():
    tr = TraceObserver(record_work=False)
    _program().run(observers=[tr])
    kinds = [e.kind for e in tr.events]
    assert kinds.count("spawn") == 3  # main + 2 workers
    assert kinds.count("exit") == 3
    assert tr.progress_counts["tick"] == 8
    assert tr.func_calls["fn"] == 8
    assert tr.line_cpu[L] == 8 * US(500)


def test_trace_events_are_time_ordered():
    tr = TraceObserver()
    _program().run(observers=[tr])
    times = [e.time for e in tr.events]
    assert times == sorted(times)


def test_trace_truncation_bound():
    tr = TraceObserver(max_events=5)
    _program().run(observers=[tr])
    assert len(tr.events) == 5
    assert tr.truncated
    # aggregates keep counting past the event cap
    assert tr.progress_counts["tick"] == 8


def test_trace_summary_and_csv():
    tr = TraceObserver()
    _program().run(observers=[tr])
    summary = tr.summary()
    assert "hottest lines" in summary
    assert "t.c:1" in summary
    csv = tr.to_csv()
    assert csv.startswith("time_ns,kind,thread,detail")
    assert "progress" in csv


def test_trace_samples_optional():
    from repro.sim import SimConfig

    tr = TraceObserver(record_work=False, record_samples=True)

    def main(t):
        yield Work(L, MS(5))

    Program(main, config=SimConfig(sample_period_ns=MS(1))).run(observers=[tr])
    assert any(e.kind == "sample" for e in tr.events)
