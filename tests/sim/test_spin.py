"""SpinBarrier and SpinMutex: busy-wait composites and the interference model."""

from repro.sim import MS, US, Join, Program, SimConfig, Spawn, Work, line
from repro.sim.sync import SpinBarrier, SpinMutex

SPIN = line("parsec_barrier.cpp:163")
W = line("w.c:1")


def run(main, cores=8, interference=0.0, seed=0):
    cfg = SimConfig(cores=cores, interference_coeff=interference, seed=seed)
    return Program(main, config=cfg).run()


def _phased(n_threads, phases, work_fn, trylock=True):
    def main(t):
        sb = SpinBarrier(n_threads, SPIN, trylock_spin=trylock)

        def worker(t2, wid):
            for p in range(phases):
                yield Work(W, work_fn(wid, p), memory_bound=True)
                yield from sb.wait()

        ws = []
        for wid in range(n_threads):
            def body(t2, wid=wid):
                yield from worker(t2, wid)
            ws.append((yield Spawn(body)))
        for w in ws:
            yield Join(w)
        main.barrier = sb

    return main


def test_spin_barrier_synchronizes_phases():
    main = _phased(4, 5, lambda wid, p: US(100) * (wid + 1))
    run(main)
    assert main.barrier.generation == 5


def test_imbalance_causes_spinning():
    main = _phased(4, 3, lambda wid, p: MS(1) if wid == 0 else US(100))
    run(main)
    assert main.barrier.total_spin_iters > 100


def test_balanced_threads_spin_little():
    main = _phased(4, 3, lambda wid, p: MS(1))
    run(main)
    assert main.barrier.total_spin_iters < 100


def test_interference_slows_memory_bound_work():
    """Spinning threads slow down memory-bound work in the laggard."""
    work = lambda wid, p: MS(2) if wid == 0 else US(50)
    base = run(_phased(4, 3, work), interference=0.0).runtime_ns
    slowed = run(_phased(4, 3, work), interference=0.5).runtime_ns
    assert slowed > base * 1.2


def test_interference_off_when_no_spinning():
    """A blocking-barrier run is unaffected by the interference coefficient."""
    from repro.sim import BarrierWait
    from repro.sim.sync import Barrier

    def main(t):
        b = Barrier(4)

        def worker(t2, wid):
            for _ in range(3):
                yield Work(W, MS(1), memory_bound=True)
                yield BarrierWait(b)

        ws = []
        for wid in range(4):
            def body(t2, wid=wid):
                yield from worker(t2, wid)
            ws.append((yield Spawn(body)))
        for w in ws:
            yield Join(w)

    base = run(main, interference=0.0).runtime_ns
    r2 = Program(main, config=SimConfig(cores=8, interference_coeff=0.9)).run()
    assert abs(r2.runtime_ns - base) < US(10)


def test_flag_spin_avoids_mutex_traffic():
    main = _phased(4, 3, lambda wid, p: MS(1) if wid == 0 else US(100), trylock=False)
    run(main)
    sb = main.barrier
    assert sb.total_spin_iters > 0
    assert sb.mutex.acquires <= 4 * 3 + 1  # only barrier entries, no polling


def test_spin_mutex_excludes_and_spins():
    order = []

    def main(t):
        sm = SpinMutex(SPIN, spin_iter_ns=US(1))

        def worker(t2, name):
            yield from sm.lock()
            order.append(("enter", name))
            yield Work(W, US(500))
            order.append(("leave", name))
            yield from sm.unlock()

        a = yield Spawn(lambda t2: worker(t2, "a"))
        b = yield Spawn(lambda t2: worker(t2, "b"))
        yield Join(a)
        yield Join(b)
        main.sm = sm

    run(main)
    assert order[0][1] == order[1][1]  # no interleaving
    assert main.sm.total_spin_iters > 0  # the loser spun
