"""Core scheduling: oversubscription, fairness, quantum, frames."""

from repro.sim import MS, US, Join, PopFrame, Program, SimConfig, Spawn, Work, call, line

L = line("f.c:1")


def test_oversubscription_round_robin():
    """More threads than cores: all make progress; total time ~ cpu/cores."""
    done = []

    def main(t):
        def worker(t2, wid):
            yield Work(L, MS(4))
            done.append(wid)

        ws = []
        for wid in range(6):
            def body(t2, wid=wid):
                yield from worker(t2, wid)
            ws.append((yield Spawn(body)))
        for w in ws:
            yield Join(w)

    r = Program(main, config=SimConfig(cores=2, quantum_ns=MS(1))).run()
    assert sorted(done) == list(range(6))
    # 24 ms of CPU on 2 cores (main is idle/blocked) => ~12 ms wall
    assert MS(11.9) <= r.runtime_ns <= MS(12.5)


def test_fairness_interleaves_under_contention():
    """With one core and a short quantum, two long jobs finish close together."""
    finish = {}

    def main(t):
        def worker(t2, wid):
            yield Work(L, MS(5))
            finish[wid] = t2

        a = yield Spawn(lambda t2: worker(t2, "a"))
        b = yield Spawn(lambda t2: worker(t2, "b"))
        yield Join(a)
        yield Join(b)

    r = Program(main, config=SimConfig(cores=1, quantum_ns=MS(1))).run()
    assert r.runtime_ns >= MS(10)


def test_call_frames_tracked():
    seen = {}

    def main(t):
        def inner():
            yield Work(L, US(10))
            seen["func"] = t.current_func()
            seen["chain"] = t.callchain()

        yield from call("outer", call("inner", inner(), line("o.c:5")), line("m.c:9"))
        seen["after"] = t.current_func()

    Program(main).run()
    assert seen["func"] == "inner"
    # innermost-first: active line, then the callsites
    assert seen["chain"] == (L, line("o.c:5"), line("m.c:9"))
    assert seen["after"] == ""


def test_unbalanced_pop_frame_raises():
    import pytest

    from repro.sim.errors import SimulationError

    def main(t):
        yield PopFrame()

    with pytest.raises(SimulationError):
        Program(main).run()


def test_quantum_does_not_change_total_time():
    def build(quantum):
        def main(t):
            def worker(t2):
                yield Work(L, MS(6))

            a = yield Spawn(worker)
            b = yield Spawn(worker)
            yield Join(a)
            yield Join(b)

        return Program(main, config=SimConfig(cores=2, quantum_ns=quantum))

    fine = build(US(100)).run().runtime_ns
    coarse = build(MS(2)).run().runtime_ns
    assert abs(fine - coarse) <= US(20)
