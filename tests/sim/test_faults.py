"""Fault injection (:mod:`repro.sim.faults`): determinism, every sim-level
fault class, and the structured deadlock/stall diagnostics."""

from dataclasses import replace

import pytest

from repro.apps.example import build_example
from repro.sim import (
    DeadlockError,
    FaultInjector,
    FaultPlan,
    Mutex,
    Observer,
    Program,
    SimConfig,
    StuckLockError,
    ThreadCrashFault,
)
from repro.sim.clock import MS
from repro.sim.ops import Join, Lock, Spawn, Work
from repro.sim.source import line


def _program(seed=3):
    # ~6.7 ms per round: 30 rounds comfortably cover the default
    # fault-arming window of [2 ms, 120 ms)
    return build_example(rounds=30).build(seed)


def _run_with(plan, seed=3):
    prog = _program(seed)
    return prog.run(config=replace(prog.config, faults=plan))


# -- plan / injector -----------------------------------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(thread_crash=1.5).validate()
    with pytest.raises(ValueError):
        FaultPlan(stall_ns=MS(10), stall_detect_ns=MS(20)).validate()
    with pytest.raises(ValueError):
        FaultPlan(spike_factor=0).validate()
    FaultPlan.chaos(seed=1).validate()


def test_injector_is_deterministic_per_seed():
    plan = FaultPlan.chaos(seed=9)
    a = FaultInjector(plan, run_seed=42)
    b = FaultInjector(plan, run_seed=42)
    assert (a.crash_at_ns, a.stall_at_ns, a.spike_from_ns) == \
        (b.crash_at_ns, b.stall_at_ns, b.spike_from_ns)
    assert (a.worker_kill, a.worker_hang) == (b.worker_kill, b.worker_hang)
    # different run seeds draw from disjoint streams
    c = FaultInjector(plan, run_seed=43)
    assert (a.crash_at_ns, a.stall_at_ns) != (c.crash_at_ns, c.stall_at_ns) or \
        a.spike_from_ns != c.spike_from_ns


def test_worker_faults_fire_on_first_attempt_only():
    plan = FaultPlan(seed=1, worker_kill=1.0, worker_hang=1.0)
    first = FaultInjector(plan, run_seed=5, attempt=0)
    retry = FaultInjector(plan, run_seed=5, attempt=1)
    assert first.worker_kill
    assert not retry.worker_kill and not retry.worker_hang


def test_worker_kill_and_hang_are_mutually_exclusive():
    plan = FaultPlan(seed=1, worker_kill=1.0, worker_hang=1.0)
    inj = FaultInjector(plan, run_seed=5)
    assert inj.worker_kill and not inj.worker_hang


# -- sim-level faults ----------------------------------------------------------------


def test_thread_crash_fault_raises_typed_error():
    with pytest.raises(ThreadCrashFault) as exc_info:
        _run_with(FaultPlan(seed=1, thread_crash=1.0))
    err = exc_info.value
    assert err.virtual_ns > 0
    assert err.thread_name
    assert str(err.virtual_ns) in str(err)


def test_thread_crash_is_reproducible():
    times = set()
    for _ in range(2):
        with pytest.raises(ThreadCrashFault) as exc_info:
            _run_with(FaultPlan(seed=1, thread_crash=1.0))
        times.add((exc_info.value.virtual_ns, exc_info.value.thread_name))
    assert len(times) == 1


def test_stuck_lock_raises_with_blocked_diagnostics():
    with pytest.raises(StuckLockError) as exc_info:
        _run_with(FaultPlan(seed=1, stuck_lock=1.0))
    err = exc_info.value
    assert err.holder
    assert err.virtual_ns > 0
    # the wedged schedule's blocked peers carry callchains
    assert all(len(entry) == 3 for entry in err.blocked)


class _SampleCounter(Observer):
    wants_samples = True

    def __init__(self):
        self.seen = 0

    def on_sample(self, sample):
        self.seen += 1


def test_sample_perturbation_drops_delivered_samples():
    # perturbation happens at delivery: the engine still *takes* every
    # sample (``sample_count``), but the consumer sees a lossy stream
    counter = _SampleCounter()
    prog = _program()
    plan = FaultPlan(seed=1, sample_loss=0.8)
    result = prog.run(
        observers=(counter,), config=replace(prog.config, faults=plan)
    )
    assert result.sample_count > 0
    assert 0 < counter.seen < result.sample_count
    # engine accounting untouched: same virtual timeline as a clean run
    clean = _program().run(observers=(_SampleCounter(),))
    assert result.runtime_ns == clean.runtime_ns


def test_sample_duplication_inflates_delivered_samples():
    counter = _SampleCounter()
    prog = _program()
    plan = FaultPlan(seed=1, sample_dup=0.8)
    result = prog.run(
        observers=(counter,), config=replace(prog.config, faults=plan)
    )
    assert counter.seen > result.sample_count


def _profiled(plan):
    """Run one profiled execution under an optional plan."""
    from repro.core.config import CozConfig
    from repro.core.profiler import CausalProfiler

    spec = build_example(rounds=30)
    prog = spec.build(3)
    profiler = CausalProfiler(
        CozConfig(scope=spec.scope, experiment_duration_ns=MS(20), seed=3),
        tuple(spec.progress_points),
        (),
    )
    cfg = prog.config if plan is None else replace(prog.config, faults=plan)
    return prog.run(hook=profiler, config=cfg)


def test_jitter_spike_stretches_profiled_run():
    # spikes only fire on inserted pauses, so compare profiled runs
    clean = _profiled(None)
    spiked = _profiled(FaultPlan(seed=2, jitter_spike=1.0, spike_factor=100))
    assert spiked.runtime_ns > clean.runtime_ns


def test_no_faults_plan_is_bit_identical_to_none():
    prog = _program()
    baseline = prog.run()
    with_empty_plan = prog.run(config=replace(prog.config, faults=FaultPlan()))
    assert baseline.runtime_ns == with_empty_plan.runtime_ns
    assert baseline.sample_count == with_empty_plan.sample_count


# -- structured deadlock reporting ---------------------------------------------------


def test_deadlock_error_carries_timestamp_and_callchains():
    m1, m2 = Mutex("m1"), Mutex("m2")

    def t1(t):
        yield Lock(m1)
        yield Work(line("dead.c:1"), MS(5))
        yield Lock(m2)

    def t2(t):
        yield Lock(m2)
        yield Work(line("dead.c:2"), MS(5))
        yield Lock(m1)

    def main(t):
        a = yield Spawn(t1, name="t1")
        b = yield Spawn(t2, name="t2")
        yield Join(a)
        yield Join(b)

    with pytest.raises(DeadlockError) as exc_info:
        Program(main, config=SimConfig(seed=0)).run()
    err = exc_info.value
    assert err.virtual_ns > 0
    names = {name for name, _, _ in err.blocked}
    assert {"t1", "t2"} <= names
    for name, what, chain in err.blocked:
        if name in ("t1", "t2"):
            assert what is not None
    assert "t1" in str(err) and "t2" in str(err)
