"""Units and formatting."""

from repro.sim.clock import MS, NS_PER_MS, NS_PER_SEC, NS_PER_US, SEC, US, fmt_ns


def test_unit_conversions():
    assert US(1) == NS_PER_US == 1_000
    assert MS(1) == NS_PER_MS == 1_000_000
    assert SEC(1) == NS_PER_SEC == 1_000_000_000


def test_fractional_units_round_to_int():
    assert US(1.5) == 1_500
    assert MS(0.25) == 250_000
    assert isinstance(MS(0.1), int)


def test_fmt_ns_adaptive_units():
    assert fmt_ns(500) == "500ns"
    assert fmt_ns(1_500) == "1.500us"
    assert fmt_ns(2_500_000) == "2.500ms"
    assert fmt_ns(3_000_000_000) == "3.000s"


def test_fmt_ns_negative():
    assert fmt_ns(-1_500) == "-1.500us"
