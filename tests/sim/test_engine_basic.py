"""Engine fundamentals: time, spawn/join, sleep, I/O, exit values."""

import pytest

from repro.sim import (
    IO,
    MS,
    US,
    DeadlockError,
    Join,
    Lock,
    Program,
    Progress,
    SimConfig,
    Sleep,
    Spawn,
    Work,
    line,
)
from repro.sim.errors import SimulationError
from repro.sim.sync import Mutex

L = line("a.c:1")


def run(main, config=None):
    return Program(main, config=config or SimConfig()).run()


def test_single_work_advances_clock():
    def main(t):
        yield Work(L, MS(3))

    assert run(main).runtime_ns == MS(3)


def test_sequential_work_accumulates():
    def main(t):
        yield Work(L, MS(1))
        yield Work(L, MS(2))

    r = run(main)
    assert r.runtime_ns == MS(3)
    assert r.cpu_ns == MS(3)


def test_zero_duration_work_is_legal():
    def main(t):
        yield Work(L, 0)
        yield Work(L, MS(1))

    assert run(main).runtime_ns == MS(1)


def test_parallel_threads_overlap(fast_config):
    def main(t):
        def worker(t2):
            yield Work(L, MS(4))

        a = yield Spawn(worker)
        b = yield Spawn(worker)
        yield Join(a)
        yield Join(b)

    r = run(main, fast_config)
    # two cores: both 4ms bodies overlap (plus tiny spawn costs)
    assert r.runtime_ns < MS(4.3)
    assert r.cpu_ns >= MS(8)


def test_join_returns_exit_value():
    def main(t):
        def worker(t2):
            yield Work(L, US(10))
            return "payload"

        w = yield Spawn(worker)
        got = yield Join(w)
        assert got == "payload"

    run(main)


def test_join_on_finished_thread_is_immediate():
    def main(t):
        def worker(t2):
            yield Work(L, US(1))
            return 7

        w = yield Spawn(worker)
        yield Work(L, MS(1))  # worker certainly done
        got = yield Join(w)
        assert got == 7

    run(main)


def test_sleep_advances_wall_not_cpu():
    def main(t):
        yield Sleep(MS(5))
        yield Work(L, MS(1))

    r = run(main)
    assert r.runtime_ns == MS(6)
    assert r.cpu_ns == MS(1)


def test_io_blocks_like_sleep():
    def main(t):
        yield IO(MS(2))

    assert run(main).runtime_ns == MS(2)


def test_progress_counted_without_profiler():
    def main(t):
        for _ in range(5):
            yield Work(L, US(10))
            yield Progress("tick")

    assert run(main).progress("tick") == 5


def test_thread_count_reported():
    def main(t):
        def worker(t2):
            yield Work(L, US(1))

        children = []
        for _ in range(3):
            children.append((yield Spawn(worker)))
        for c in children:
            yield Join(c)

    assert run(main).thread_count == 4


def test_deadlock_detected():
    def main(t):
        m = Mutex("m")

        def hog(t2):
            yield Lock(m)
            # never unlocks, never exits
            yield Sleep(MS(1))
            yield Lock(m)  # self-deadlock

        w = yield Spawn(hog)
        yield Join(w)

    with pytest.raises(DeadlockError):
        run(main)


def test_max_virtual_ns_guards_runaway():
    def main(t):
        while True:
            yield Work(L, MS(1))

    with pytest.raises(SimulationError):
        run(main, SimConfig(max_virtual_ns=MS(10)))


def test_engine_run_once_only():
    from repro.sim.engine import Engine

    eng = Engine()

    def main(t):
        yield Work(L, US(1))

    eng.spawn(main)
    eng.run()
    with pytest.raises(SimulationError):
        eng.run()
