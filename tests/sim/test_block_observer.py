"""The passive Observer block/unblock surface.

Edge coverage over every blocking primitive, exact pairing of
on_block/on_unblock, waker identity, the sleep-is-not-a-blocking-edge rule,
contention counts on real apps, and the passivity guarantee: attaching a
block observer changes no trace hash.
"""

from repro.sim import (
    MS,
    US,
    BarrierWait,
    CondWait,
    Join,
    Lock,
    Program,
    SemPost,
    SemWait,
    Signal,
    SimConfig,
    Sleep,
    Spawn,
    Unlock,
    Work,
    line,
)
from repro.sim.hooks import Observer
from repro.sim.sync import Barrier, CondVar, Mutex, Semaphore
from repro.sim.thread import VThread
from repro.sim.trace import TraceHasher

L = line("b.c:1")


class RecordingObserver(Observer):
    """Records every block/unblock edge for assertions."""

    def __init__(self) -> None:
        self.blocks = []    # (thread name, obj)
        self.unblocks = []  # (thread name, waker name or None, blocked_ns)
        self.outstanding = set()

    def on_block(self, thread: VThread, obj: object) -> None:
        assert thread not in self.outstanding, "double block without unblock"
        self.outstanding.add(thread)
        self.blocks.append((thread.name, obj))

    def on_unblock(self, thread, waker, blocked_ns: int) -> None:
        assert thread in self.outstanding, "unblock without matching block"
        self.outstanding.remove(thread)
        assert blocked_ns >= 0
        self.unblocks.append(
            (thread.name, None if waker is None else waker.name, blocked_ns)
        )


def run(main, obs, cores=4):
    Program(main, config=SimConfig(cores=cores)).run(observers=[obs])
    assert not obs.outstanding, "threads never finish blocked"
    assert len(obs.blocks) == len(obs.unblocks)
    return obs


def test_mutex_edge_attributes_waker_and_duration():
    obs = RecordingObserver()

    def main(t):
        m = Mutex(name="m")

        def holder(t2):
            yield Lock(m)
            yield Work(L, MS(2))
            yield Unlock(m)

        def waiter(t2):
            yield Lock(m)
            yield Unlock(m)

        a = yield Spawn(holder, name="holder")
        yield Work(L, US(10))  # let the holder take the lock first
        b = yield Spawn(waiter, name="waiter")
        yield Join(a)
        yield Join(b)

    run(main, obs)
    mutex_edges = [(n, o) for n, o in obs.blocks if isinstance(o, Mutex)]
    assert len(mutex_edges) == 1
    assert mutex_edges[0][0] == "waiter"
    (edge,) = [u for u in obs.unblocks if u[0] == "waiter"]
    assert edge[1] == "holder"       # the unlocker is the waker
    assert 0 < edge[2] <= MS(2)      # blocked for most of the critical section


def test_condvar_semaphore_barrier_join_edges():
    obs = RecordingObserver()

    def main(t):
        m, c, s = Mutex(), CondVar(), Semaphore(0)
        bar = Barrier(2)

        def consumer(t2):
            yield Lock(m)
            yield CondWait(c, m)
            yield Unlock(m)
            yield SemWait(s)
            yield BarrierWait(bar)

        def producer(t2):
            yield Work(L, US(50))
            yield Lock(m)
            yield Signal(c)
            yield Unlock(m)
            yield Work(L, US(50))  # keep the consumer blocked on the sem
            yield SemPost(s)
            yield Work(L, US(50))  # ...and arriving first at the barrier
            yield BarrierWait(bar)

        a = yield Spawn(consumer, name="consumer")
        yield Work(L, US(10))
        b = yield Spawn(producer, name="producer")
        yield Join(a)
        yield Join(b)

    run(main, obs)
    kinds = [type(o).__name__ for _, o in obs.blocks]
    # consumer blocks on the condvar, semaphore, and barrier; main blocks
    # on Join (the joined VThread is the sync object)
    assert kinds.count("CondVar") == 1
    assert kinds.count("Semaphore") == 1
    assert kinds.count("Barrier") == 1
    assert kinds.count("VThread") >= 1
    wakers = {u[0]: u[1] for u in obs.unblocks}
    assert wakers["consumer"] == "producer"


def test_sleep_is_not_a_blocking_edge():
    obs = RecordingObserver()

    def main(t):
        yield Work(L, US(10))
        yield Sleep(MS(1))
        yield Work(L, US(10))

    run(main, obs)
    assert obs.blocks == []
    assert obs.unblocks == []


def test_sqlite_contention_counts():
    """The striped-free sqlite model serializes on its global mutexes."""
    from repro.apps.sqlite import build_sqlite

    obs = RecordingObserver()
    build_sqlite(False, inserts_per_thread=150).build(0).run(observers=[obs])
    assert not obs.outstanding
    mutex_edges = [o for _, o in obs.blocks if isinstance(o, Mutex)]
    # 10 writer threads fighting over the page-cache mutexes block a lot
    assert len(mutex_edges) > 100
    assert len(obs.blocks) == len(obs.unblocks)


def test_memcached_channel_edges():
    """memcached's data locks spin (never block); its channels do block."""
    from repro.apps.memcached import build_memcached

    obs = RecordingObserver()
    build_memcached(
        n_clients=8, n_workers=4, n_requests=400
    ).build(0).run(observers=[obs])
    assert not obs.outstanding
    by_kind = {}
    for _, o in obs.blocks:
        by_kind[type(o).__name__] = by_kind.get(type(o).__name__, 0) + 1
    # channel handoff = condvar waits guarded by a channel mutex
    assert by_kind.get("CondVar", 0) > 0


def test_block_observer_does_not_perturb_trace_hash():
    """Passivity: the digest is identical with and without a block observer."""
    from repro.apps.sqlite import build_sqlite

    def digest(observers):
        hasher = TraceHasher()
        result = build_sqlite(False, inserts_per_thread=100).build(0).run(
            observers=[hasher] + observers
        )
        return hasher.hexdigest(), result.runtime_ns

    base = digest([])
    observed = digest([RecordingObserver()])
    assert base == observed
