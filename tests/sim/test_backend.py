"""Engine backend selection and compiled-core bit-identity.

The compiled core (``repro.sim.backend._core``) is an optional extension;
everything here that needs it skips cleanly when it is not built, and the
selection plumbing (env vars, ``SimConfig`` pins, fail-loud explicit
requests) is tested either way.

The heart of the file re-runs representative golden-trace cells under every
backend x sample-pipeline combination and demands the recorded hashes —
the same gate ``tests/sim/test_golden_trace.py`` pins for the default
configuration.  Session cells run observer-free, so the compiled loop
actually engages there; program cells attach a ``TraceHasher`` observer,
which makes the accel wrapper fall back to the pure loop mid-matrix —
deliberately exercising the per-run fallback.
"""

from __future__ import annotations

import importlib.util
import pathlib
from dataclasses import replace

import pytest

from repro.sim import backend as backend_mod
from repro.sim.backend import accel_available

# load the golden-trace module by path (tests/sim is not a package): its
# CELLS/GOLDEN are the single source of recorded hashes — no duplicates to
# drift when a re-record happens
_spec = importlib.util.spec_from_file_location(
    "golden_trace_cells", pathlib.Path(__file__).with_name("test_golden_trace.py")
)
_gt = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_gt)

#: representative cells: two observer-free sessions (compiled loop engages)
#: and one observed program cell (compiled loop falls back per run)
MATRIX_CELLS = ("example_session", "ferret_session", "example_jitter")

BACKENDS = ["pure"] + (["accel"] if accel_available() else [])
PIPELINES = ["scalar", "columnar"]


@pytest.mark.parametrize("cell", MATRIX_CELLS)
@pytest.mark.parametrize("pipeline", PIPELINES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_hashes_hold_for_every_backend_pipeline_combo(
    monkeypatch, backend, pipeline, cell
):
    monkeypatch.setenv(backend_mod.BACKEND_ENV, backend)
    monkeypatch.setenv(backend_mod.PIPELINE_ENV, pipeline)
    assert _gt.CELLS[cell]() == _gt.GOLDEN[cell], (
        f"{cell} diverged under backend={backend} pipeline={pipeline}"
    )


def _run_example(config_over, observers=None):
    """One observer-light example run; returns the engine it ran on."""
    from repro.apps import registry
    from repro.sim.engine import Engine

    engines = []
    orig_init = Engine.__init__

    def spy(self, *a, **k):
        orig_init(self, *a, **k)
        engines.append(self)

    spec = registry.build("example", rounds=10)
    program = spec.build(0)
    config = replace(program.config, **config_over)
    import unittest.mock as mock

    with mock.patch.object(Engine, "__init__", spy):
        program.run(config=config, observers=observers or [])
    assert engines, "program.run never built an engine"
    return engines[-1]


@pytest.mark.skipif(not accel_available(), reason="compiled core not built")
def test_accel_loops_proves_engagement_and_fallback():
    """``Engine.accel_loops`` counts real compiled loops, not the label.

    An observer-free run under ``backend='accel'`` must engage the compiled
    loop; attaching any passive observer must drop the same engine back to
    the pure loop (its notification fan-out lives in Python).
    """
    engaged = _run_example({"backend": "accel"})
    assert engaged.backend == "accel"
    assert engaged.accel_loops >= 1

    from repro.sim.trace import TraceHasher

    fellback = _run_example({"backend": "accel"}, observers=[TraceHasher()])
    assert fellback.backend == "accel"  # selected, but...
    assert fellback.accel_loops == 0    # ...never eligible with observers


def test_simconfig_backend_pin_beats_environment(monkeypatch):
    if accel_available():
        monkeypatch.setenv(backend_mod.BACKEND_ENV, "accel")
    engine = _run_example({"backend": "pure"})
    assert engine.backend == "pure"
    assert engine.accel_loops == 0


def test_explicit_accel_without_core_fails_loudly(monkeypatch):
    """A benchmark must never *think* it measured the compiled core."""
    # an env pin is also an explicit request and would raise below; clear
    # it so the automatic-selection half of the test sees the default path
    monkeypatch.delenv(backend_mod.BACKEND_ENV, raising=False)
    monkeypatch.setattr(backend_mod, "_accel_checked", True)
    monkeypatch.setattr(backend_mod, "_accel_module", None)
    with pytest.raises(RuntimeError, match="not built"):
        backend_mod.resolve_backend("accel")
    # automatic selection degrades silently instead
    assert backend_mod.resolve_backend(None) == "pure"


def test_unknown_backend_and_pipeline_names_are_rejected(monkeypatch):
    with pytest.raises(ValueError):
        backend_mod.resolve_backend("fast")
    monkeypatch.setenv(backend_mod.PIPELINE_ENV, "rowwise")
    with pytest.raises(ValueError):
        backend_mod.default_columnar()
