"""Per-thread CPU-time sampling semantics."""

import pytest

from repro.sim import MS, US, Program, SimConfig, Sleep, Work, line
from repro.sim.hooks import HookAction, ProfilerHook
from repro.sim.sampler import Sampler

L1 = line("a.c:1")
L2 = line("a.c:2")


class RecordingHook(ProfilerHook):
    """Collects every delivered sample batch."""

    wants_samples = True

    def __init__(self):
        self.samples = []

    def on_run_start(self, engine):
        engine.enable_sampling()

    def on_samples(self, thread, samples):
        self.samples.extend(samples)
        return HookAction()


def test_sampler_validates_args():
    with pytest.raises(ValueError):
        Sampler(0, 10)
    with pytest.raises(ValueError):
        Sampler(1000, 0)


def test_sample_count_matches_cpu_time():
    hook = RecordingHook()

    def main(t):
        yield Work(L1, MS(10))

    cfg = SimConfig(sample_period_ns=MS(1), sample_phase_jitter=False)
    Program(main, config=cfg).run(hook=hook)
    assert len(hook.samples) == 10
    assert all(s.line == L1 for s in hook.samples)


def test_sampling_skips_off_cpu_time():
    hook = RecordingHook()

    def main(t):
        yield Work(L1, MS(3))
        yield Sleep(MS(50))
        yield Work(L1, MS(3))

    cfg = SimConfig(sample_period_ns=MS(1), sample_phase_jitter=False)
    Program(main, config=cfg).run(hook=hook)
    assert len(hook.samples) == 6  # nothing sampled during the sleep


def test_samples_attribute_proportionally():
    hook = RecordingHook()

    def main(t):
        for _ in range(50):
            yield Work(L1, US(300))
            yield Work(L2, US(100))

    cfg = SimConfig(sample_period_ns=US(100), sample_phase_jitter=False)
    Program(main, config=cfg).run(hook=hook)
    n1 = sum(1 for s in hook.samples if s.line == L1)
    n2 = sum(1 for s in hook.samples if s.line == L2)
    assert n1 + n2 == 200
    assert n1 == pytest.approx(150, abs=5)


def test_phase_jitter_shifts_first_sample():
    """With jitter, two seeds sample at different phases (but same count)."""

    def counts(seed):
        hook = RecordingHook()

        def main(t):
            yield Work(L1, MS(5))

        cfg = SimConfig(sample_period_ns=MS(1), seed=seed)
        Program(main, config=cfg).run(hook=hook)
        return [s.time for s in hook.samples]

    t0, t1 = counts(1), counts(2)
    assert len(t0) in (5, 6) and len(t1) in (5, 6)
    assert t0 != t1  # different phases


def test_no_samples_without_enable():
    class PassiveHook(ProfilerHook):
        wants_samples = True

        def __init__(self):
            self.batches = 0

        def on_samples(self, thread, samples):
            self.batches += 1
            return HookAction()

    hook = PassiveHook()

    def main(t):
        yield Work(L1, MS(10))

    Program(main).run(hook=hook)  # never called enable_sampling()
    assert hook.batches == 0


def test_rate_scaled_interpolation_matches_ceil_schedule():
    """Sample interpolation under interference rescaling must use the same
    ``ceil`` rounding as the scheduled chunk duration.  Regression: the old
    ``start_real = now - int(nominal * rate)`` placed the chunk start 1 ns
    late whenever ``nominal * rate`` was fractional, shifting every
    interpolated sample time off the chunk's real time base."""
    import math

    from repro.sim.thread import VThread

    def body(t):
        yield

    sampler = Sampler(period_ns=1000, batch_size=10)
    t = VThread(body, tid=0)
    rate = 1.0009
    # 1000 nominal ns at rate 1.0009 is scheduled to finish ceil(1000.9) =
    # 1001 real ns after the chunk starts; completing at now=5000 puts the
    # start at 3999, and the single sample (at nominal offset 1000) lands
    # at 3999 + int(1000 * rate) = 4999 — strictly inside the chunk.
    sampler.account(t, 1000, now=5000, rate=rate)
    [sample] = t.sample_buffer
    assert sample.time == (5000 - math.ceil(1000 * rate)) + int(1000 * rate)
    assert sample.time == 4999
    assert sample.time < 5000


def test_batching_delivers_in_groups():
    class BatchHook(RecordingHook):
        def __init__(self):
            super().__init__()
            self.batch_sizes = []

        def on_samples(self, thread, samples):
            self.batch_sizes.append(len(samples))
            return super().on_samples(thread, samples)

    hook = BatchHook()

    def main(t):
        yield Work(L1, MS(35))

    cfg = SimConfig(sample_period_ns=MS(1), sample_batch=10, sample_phase_jitter=False)
    Program(main, config=cfg).run(hook=hook)
    # three full batches of >=10 plus the exit drain
    assert all(b >= 10 for b in hook.batch_sizes[:3])
    assert sum(hook.batch_sizes) == 35
