"""Mutex, condvar, barrier, semaphore semantics."""

import pytest

from repro.sim import (
    MS,
    US,
    BarrierWait,
    Broadcast,
    CondWait,
    Join,
    Lock,
    Program,
    SemPost,
    SemWait,
    Signal,
    SimConfig,
    Spawn,
    TryLock,
    Unlock,
    Work,
    line,
)
from repro.sim.errors import SyncError
from repro.sim.sync import Barrier, CondVar, Mutex, Semaphore

L = line("s.c:1")


def run(main, cores=4):
    return Program(main, config=SimConfig(cores=cores)).run()


def test_mutex_mutual_exclusion():
    events = []

    def main(t):
        m = Mutex()

        def worker(t2, name):
            yield Lock(m)
            events.append(("enter", name))
            yield Work(L, MS(1))
            events.append(("leave", name))
            yield Unlock(m)

        a = yield Spawn(lambda t2: worker(t2, "a"))
        b = yield Spawn(lambda t2: worker(t2, "b"))
        yield Join(a)
        yield Join(b)

    run(main)
    # critical sections never interleave
    assert events[0][0] == "enter" and events[1][0] == "leave"
    assert events[0][1] == events[1][1]
    assert events[2][1] == events[3][1]


def test_mutex_fifo_handoff():
    order = []

    def main(t):
        m = Mutex()

        def worker(t2, name):
            yield Lock(m)
            order.append(name)
            yield Work(L, US(100))
            yield Unlock(m)

        ws = []
        # stagger arrivals so the queue order is deterministic
        for i, name in enumerate(["a", "b", "c"]):
            yield Work(L, US(10))
            ws.append((yield Spawn(lambda t2, n=name: worker(t2, n))))
        for w in ws:
            yield Join(w)

    run(main, cores=8)
    assert order == ["a", "b", "c"]


def test_unlock_not_owner_raises():
    def main(t):
        m = Mutex()
        yield Unlock(m)

    with pytest.raises(SyncError):
        run(main)


def test_trylock_success_and_failure():
    results = {}

    def main(t):
        m = Mutex()

        def holder(t2):
            yield Lock(m)
            yield Work(L, MS(2))
            yield Unlock(m)

        h = yield Spawn(holder)
        yield Work(L, US(100))  # holder definitely owns the mutex now
        results["contended"] = yield TryLock(m)
        yield Join(h)
        results["free"] = yield TryLock(m)
        yield Unlock(m)

    run(main)
    assert results == {"contended": False, "free": True}


def test_condvar_signal_wakes_one():
    state = {"ready": False, "woken": 0}

    def main(t):
        m = Mutex()
        c = CondVar()

        def waiter(t2):
            yield Lock(m)
            while not state["ready"]:
                yield CondWait(c, m)
            state["woken"] += 1
            yield Unlock(m)

        ws = []
        for _ in range(2):
            ws.append((yield Spawn(waiter)))
        yield Work(L, MS(1))  # let both block
        yield Lock(m)
        state["ready"] = True
        yield Signal(c)
        yield Unlock(m)
        yield Join(ws[0])
        # second waiter still blocked; signal again
        yield Lock(m)
        yield Signal(c)
        yield Unlock(m)
        yield Join(ws[1])

    run(main)
    assert state["woken"] == 2


def test_condvar_broadcast_wakes_all():
    state = {"ready": False, "woken": 0}

    def main(t):
        m = Mutex()
        c = CondVar()

        def waiter(t2):
            yield Lock(m)
            while not state["ready"]:
                yield CondWait(c, m)
            state["woken"] += 1
            yield Unlock(m)

        ws = []
        for _ in range(4):
            ws.append((yield Spawn(waiter)))
        yield Work(L, MS(1))
        yield Lock(m)
        state["ready"] = True
        yield Broadcast(c)
        yield Unlock(m)
        for w in ws:
            yield Join(w)

    run(main, cores=8)
    assert state["woken"] == 4


def test_condwait_requires_mutex_held():
    def main(t):
        m = Mutex()
        c = CondVar()
        yield CondWait(c, m)

    with pytest.raises(SyncError):
        run(main)


def test_barrier_releases_together_and_serial_thread():
    serials = []

    def main(t):
        b = Barrier(3)

        def worker(t2, d):
            yield Work(L, d)
            serial = yield BarrierWait(b)
            serials.append(serial)

        ws = []
        for i in range(3):
            ws.append((yield Spawn(lambda t2, d=MS(i + 1): worker(t2, d))))
        for w in ws:
            yield Join(w)

    r = run(main)
    assert serials.count(True) == 1
    assert serials.count(False) == 2
    # barrier gates on the slowest arrival
    assert r.runtime_ns >= MS(3)


def test_barrier_reusable_across_cycles():
    def main(t):
        b = Barrier(2)

        def worker(t2):
            for _ in range(5):
                yield Work(L, US(100))
                yield BarrierWait(b)

        a = yield Spawn(worker)
        c = yield Spawn(worker)
        yield Join(a)
        yield Join(c)

        assert b.cycles == 5

    run(main)


def test_semaphore_bounds_concurrency():
    peak = {"now": 0, "max": 0}

    def main(t):
        s = Semaphore(2)

        def worker(t2):
            yield SemWait(s)
            peak["now"] += 1
            peak["max"] = max(peak["max"], peak["now"])
            yield Work(L, MS(1))
            peak["now"] -= 1
            yield SemPost(s)

        ws = []
        for _ in range(5):
            ws.append((yield Spawn(worker)))
        for w in ws:
            yield Join(w)

    run(main, cores=8)
    assert peak["max"] == 2


def test_mutex_contention_statistics():
    def main(t):
        m = Mutex()

        def worker(t2):
            for _ in range(10):
                yield Lock(m)
                yield Work(L, US(50))
                yield Unlock(m)

        ws = []
        for _ in range(3):
            ws.append((yield Spawn(worker)))
        for w in ws:
            yield Join(w)

        assert m.acquires == 30
        assert m.contended_acquires > 0

    run(main)
