"""Source lines, parsing, and scope semantics (§3.1, §3.4.2)."""

import pytest

from repro.sim.source import LIBC_FILE, RUNTIME_LINE, Scope, SourceLine, line


def test_line_parsing():
    src = line("hashtable.c:217")
    assert src.file == "hashtable.c"
    assert src.lineno == 217
    assert str(src) == "hashtable.c:217"


def test_line_parsing_rejects_garbage():
    with pytest.raises(ValueError):
        line("no-line-number")
    with pytest.raises(ValueError):
        line("file.c:notanumber")


def test_lines_are_hashable_and_ordered():
    a, b = line("a.c:1"), line("a.c:2")
    assert a < b
    assert len({a, b, line("a.c:1")}) == 2


def test_default_scope_is_main_executable():
    scope = Scope.all_main()
    assert scope.contains(line("anything.c:1"))
    assert not scope.contains(RUNTIME_LINE)
    assert not scope.contains(SourceLine(LIBC_FILE, 10))


def test_only_scope_restricts_to_files():
    scope = Scope.only("ferret-parallel.c")
    assert scope.contains(line("ferret-parallel.c:320"))
    assert not scope.contains(line("cass/query.c:1502"))


def test_excluding_scope():
    scope = Scope.excluding("vendored.c")
    assert scope.contains(line("mine.c:5"))
    assert not scope.contains(line("vendored.c:5"))


def test_callchain_walk_attributes_to_first_in_scope():
    """§3.4.2: out-of-scope samples attribute to the last in-scope callsite."""
    scope = Scope.only("main.c")
    chain = (line("strlen.c:12"), line("vfprintf.c:88"), line("main.c:42"))
    assert scope.first_in_scope(chain) == line("main.c:42")


def test_callchain_walk_none_when_fully_out_of_scope():
    scope = Scope.only("main.c")
    assert scope.first_in_scope((line("a.c:1"), line("b.c:2"))) is None


def test_callchain_walk_prefers_innermost():
    scope = Scope.all_main()
    chain = (line("inner.c:1"), line("outer.c:2"))
    assert scope.first_in_scope(chain) == line("inner.c:1")
