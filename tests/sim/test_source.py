"""Source lines, parsing, and scope semantics (§3.1, §3.4.2)."""

import pytest

from repro.sim.source import LIBC_FILE, RUNTIME_LINE, Scope, SourceLine, line


def test_line_parsing():
    src = line("hashtable.c:217")
    assert src.file == "hashtable.c"
    assert src.lineno == 217
    assert str(src) == "hashtable.c:217"


def test_line_parsing_rejects_garbage():
    with pytest.raises(ValueError):
        line("no-line-number")
    with pytest.raises(ValueError):
        line("file.c:notanumber")


def test_lines_are_hashable_and_ordered():
    a, b = line("a.c:1"), line("a.c:2")
    assert a < b
    assert len({a, b, line("a.c:1")}) == 2


def test_default_scope_is_main_executable():
    scope = Scope.all_main()
    assert scope.contains(line("anything.c:1"))
    assert not scope.contains(RUNTIME_LINE)
    assert not scope.contains(SourceLine(LIBC_FILE, 10))


def test_only_scope_restricts_to_files():
    scope = Scope.only("ferret-parallel.c")
    assert scope.contains(line("ferret-parallel.c:320"))
    assert not scope.contains(line("cass/query.c:1502"))


def test_excluding_scope():
    scope = Scope.excluding("vendored.c")
    assert scope.contains(line("mine.c:5"))
    assert not scope.contains(line("vendored.c:5"))


def test_callchain_walk_attributes_to_first_in_scope():
    """§3.4.2: out-of-scope samples attribute to the last in-scope callsite."""
    scope = Scope.only("main.c")
    chain = (line("strlen.c:12"), line("vfprintf.c:88"), line("main.c:42"))
    assert scope.first_in_scope(chain) == line("main.c:42")


def test_callchain_walk_none_when_fully_out_of_scope():
    scope = Scope.only("main.c")
    assert scope.first_in_scope((line("a.c:1"), line("b.c:2"))) is None


def test_callchain_walk_prefers_innermost():
    scope = Scope.all_main()
    chain = (line("inner.c:1"), line("outer.c:2"))
    assert scope.first_in_scope(chain) == line("inner.c:1")


# -- intern table ------------------------------------------------------------------

def test_intern_line_returns_canonical_object():
    from repro.sim import source

    source.clear_intern_cache()
    a = source.intern_line("it.c", 42)
    b = source.intern_line("it.c", 42)
    assert a is b
    assert a == SourceLine("it.c", 42)


def test_intern_cache_is_bounded_and_pins_survive_reset(monkeypatch):
    from repro.sim import source

    source.clear_intern_cache()
    monkeypatch.setattr(source, "_INTERN_CAP", 8)
    runtime = source.intern_line(RUNTIME_LINE.file, RUNTIME_LINE.lineno)
    assert runtime is RUNTIME_LINE  # the pseudo-line is pre-pinned
    # overflow the table several times over
    for i in range(50):
        source.intern_line("churn.c", i)
    assert source.intern_cache_size() <= 8
    # pinned entries keep their identity across every reset
    assert source.intern_line(RUNTIME_LINE.file, RUNTIME_LINE.lineno) is RUNTIME_LINE


def test_intern_eviction_never_changes_wire_bytes(monkeypatch):
    # interning is an identity optimization: a profile encoded while the
    # table thrashes must produce the same bytes as one encoded cold
    from repro.core.profile_data import ProfileData, RunInfo
    from repro.sim import source

    def build():
        d = ProfileData()
        info = RunInfo(runtime_ns=1000, total_delay_ns=0)
        info.line_samples.update({
            source.intern_line("w.c", 1): 10,
            source.intern_line("w.c", 2): 20,
        })
        d.add_run(info)
        return d

    source.clear_intern_cache()
    cold_json = build().to_json()
    cold_bin = build().to_bytes()
    monkeypatch.setattr(source, "_INTERN_CAP", 2)
    for i in range(20):
        source.intern_line("churn2.c", i)
    assert build().to_json() == cold_json
    assert build().to_bytes() == cold_bin
