"""Efron bootstrap: SE, CI, and the Table 3 speedup statistics."""

import random
from statistics import mean, stdev

import pytest

from repro.stats.bootstrap import bootstrap_ci, bootstrap_se, speedup_stats


def test_se_close_to_analytic_for_the_mean():
    rng = random.Random(7)
    data = [rng.gauss(100, 10) for _ in range(100)]
    se = bootstrap_se(data, n_boot=800, seed=1)
    analytic = stdev(data) / len(data) ** 0.5
    assert se == pytest.approx(analytic, rel=0.2)


def test_se_zero_for_tiny_samples():
    assert bootstrap_se([5.0]) == 0.0
    assert bootstrap_se([]) == 0.0


def test_se_deterministic_given_seed():
    data = [1.0, 2.0, 3.0, 4.0]
    assert bootstrap_se(data, seed=3) == bootstrap_se(data, seed=3)
    assert bootstrap_se(data, seed=3) != bootstrap_se(data, seed=4)


def test_ci_contains_mean_for_well_behaved_data():
    rng = random.Random(11)
    data = [rng.gauss(50, 5) for _ in range(60)]
    lo, hi = bootstrap_ci(data, n_boot=500, seed=2)
    assert lo < mean(data) < hi
    assert hi - lo < 5


def test_ci_validates_input():
    with pytest.raises(ValueError):
        bootstrap_ci([])
    assert bootstrap_ci([3.0]) == (3.0, 3.0)


def test_speedup_stats_table3_semantics():
    """speedup = (t0 - t_opt)/t0, per the Table 3 caption."""
    baseline = [100.0, 101.0, 99.0, 100.5, 99.5] * 2
    optimized = [90.0, 91.0, 89.0, 90.5, 89.5] * 2
    s = speedup_stats(baseline, optimized, seed=5)
    assert s.speedup == pytest.approx(0.10, abs=0.005)
    assert s.speedup_pct == pytest.approx(10.0, abs=0.5)
    assert 0 < s.se < 0.02
    assert s.significant(alpha=0.001)
    assert s.n_baseline == s.n_optimized == 10


def test_speedup_stats_no_change_not_significant():
    runs = [100.0 + 0.1 * i for i in range(10)]
    s = speedup_stats(runs, list(runs), seed=6)
    assert abs(s.speedup) < 0.01
    assert not s.significant()


def test_speedup_stats_validates():
    with pytest.raises(ValueError):
        speedup_stats([], [1.0])


def test_speedup_str_rendering():
    s = speedup_stats([100.0] * 5, [90.0] * 5)
    text = str(s)
    assert "%" in text and "p=" in text
