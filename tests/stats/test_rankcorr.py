"""Spearman/Kendall rank agreement on ranking overlaps."""

import pytest

from repro.stats.rankcorr import rank_correlation, top_k_disagreement


def test_identical_orderings():
    c = rank_correlation(["a", "b", "c", "d"], ["a", "b", "c", "d"])
    assert c.overlap == 4
    assert c.spearman == pytest.approx(1.0)
    assert c.kendall == pytest.approx(1.0)


def test_reversed_orderings():
    c = rank_correlation(["a", "b", "c", "d"], ["d", "c", "b", "a"])
    assert c.spearman == pytest.approx(-1.0)
    assert c.kendall == pytest.approx(-1.0)


def test_known_values():
    # ranks a: x=0 y=1 z=2 w=3; b: y=0 x=1 w=2 z=3 -> d = (1,1,1,1)
    c = rank_correlation(["x", "y", "z", "w"], ["y", "x", "w", "z"])
    assert c.spearman == pytest.approx(1 - 6 * 4 / (4 * 15))  # 0.6
    # pairs: xy discordant, zw discordant, rest concordant -> (4-2)/6
    assert c.kendall == pytest.approx(2 / 6)


def test_restricted_to_overlap():
    # only b and c are shared; a-order (b, c) vs b-order (c, b): reversed
    c = rank_correlation(["a", "b", "c"], ["c", "b", "x", "y"])
    assert c.overlap == 2
    assert c.spearman == pytest.approx(-1.0)
    assert c.kendall == pytest.approx(-1.0)


def test_degenerate_overlaps():
    assert rank_correlation([], []).overlap == 0
    assert rank_correlation(["a"], ["a"]).spearman is None
    assert rank_correlation(["a", "b"], ["c", "d"]).overlap == 0
    assert rank_correlation(["a"], ["a"]).kendall is None


def test_duplicates_keep_first_occurrence():
    c = rank_correlation(["a", "b", "a"], ["a", "b"])
    assert c.overlap == 2
    assert c.spearman == pytest.approx(1.0)


def test_top_k_disagreement():
    a = ["p", "q", "r", "s"]
    b = ["q", "x", "y", "p"]
    assert top_k_disagreement(a, b, 2) == ["p"]
    assert top_k_disagreement(b, a, 2) == ["x"]
    assert top_k_disagreement(a, b, 4) == ["r", "s"]
    assert top_k_disagreement(a, a, 3) == []


def test_scipy_cross_check():
    scipy = pytest.importorskip("scipy")
    keys = ["k%d" % i for i in range(10)]
    import random

    rng = random.Random(7)
    other = keys[:]
    rng.shuffle(other)
    c = rank_correlation(keys, other)
    ra = list(range(10))
    rb = [other.index(k) for k in keys]
    assert c.spearman == pytest.approx(scipy.stats.spearmanr(ra, rb).statistic)
    assert c.kendall == pytest.approx(
        scipy.stats.kendalltau(ra, rb, variant="b").statistic
    )
