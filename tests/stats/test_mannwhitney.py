"""Mann-Whitney U: cross-checked against scipy."""

import random

import pytest
import scipy.stats

from repro.stats.mannwhitney import mann_whitney_u


def scipy_p(x, y, alternative):
    return scipy.stats.mannwhitneyu(
        x, y, alternative=alternative, method="asymptotic"
    ).pvalue


@pytest.mark.parametrize("alternative", ["less", "greater", "two-sided"])
def test_matches_scipy_no_ties(alternative):
    rng = random.Random(1)
    x = [rng.gauss(10, 2) for _ in range(12)]
    y = [rng.gauss(12, 2) for _ in range(10)]
    ours = mann_whitney_u(x, y, alternative=alternative).p_value
    assert ours == pytest.approx(scipy_p(x, y, alternative), rel=0.02)


def test_matches_scipy_with_ties():
    x = [1, 2, 2, 3, 4, 4, 4]
    y = [2, 3, 3, 4, 5, 6]
    ours = mann_whitney_u(x, y, alternative="less").p_value
    assert ours == pytest.approx(scipy_p(x, y, "less"), rel=0.02)


def test_clear_separation_is_significant():
    x = [1.0 + i * 0.01 for i in range(10)]   # small values
    y = [2.0 + i * 0.01 for i in range(10)]   # big values
    res = mann_whitney_u(x, y, alternative="less")
    assert res.p_value < 0.001  # the paper's alpha


def test_identical_samples_not_significant():
    x = [5.0] * 8
    y = [5.0] * 8
    res = mann_whitney_u(x, y, alternative="less")
    assert res.p_value >= 0.5


def test_direction_matters():
    small = [1, 2, 3, 4, 5]
    big = [10, 11, 12, 13, 14]
    assert mann_whitney_u(small, big, alternative="less").p_value < 0.01
    assert mann_whitney_u(small, big, alternative="greater").p_value > 0.9


def test_validates_inputs():
    with pytest.raises(ValueError):
        mann_whitney_u([], [1])
    with pytest.raises(ValueError):
        mann_whitney_u([1], [2], alternative="sideways")
