"""OLS regression: cross-checked against scipy.stats.linregress."""

import random

import pytest
import scipy.stats

from repro.stats.regression import linear_regression


def test_exact_line():
    xs = [0.0, 1.0, 2.0, 3.0]
    ys = [1.0, 3.0, 5.0, 7.0]
    r = linear_regression(xs, ys)
    assert r.slope == pytest.approx(2.0)
    assert r.intercept == pytest.approx(1.0)
    assert r.r2 == pytest.approx(1.0)
    assert r.slope_se == pytest.approx(0.0, abs=1e-12)
    assert r.predict(10) == pytest.approx(21.0)


def test_matches_scipy_on_noisy_data():
    rng = random.Random(3)
    xs = [i / 10 for i in range(30)]
    ys = [2.5 * x + 1.0 + rng.gauss(0, 0.3) for x in xs]
    ours = linear_regression(xs, ys)
    theirs = scipy.stats.linregress(xs, ys)
    assert ours.slope == pytest.approx(theirs.slope)
    assert ours.intercept == pytest.approx(theirs.intercept)
    assert ours.slope_se == pytest.approx(theirs.stderr, rel=1e-6)
    assert ours.r2 == pytest.approx(theirs.rvalue**2, rel=1e-6)


def test_validates_input():
    with pytest.raises(ValueError):
        linear_regression([1.0], [2.0])
    with pytest.raises(ValueError):
        linear_regression([1.0, 1.0], [2.0, 3.0])  # vertical
    with pytest.raises(ValueError):
        linear_regression([1, 2, 3], [1, 2])


def test_flat_data_r2_is_one_by_convention():
    r = linear_regression([0, 1, 2], [5.0, 5.0, 5.0])
    assert r.slope == pytest.approx(0.0)
    assert r.r2 == 1.0
