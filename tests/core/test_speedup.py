"""DelayEngine: the counter-based delay protocol of §3.4."""

from repro.core.speedup import DelayEngine
from repro.sim.thread import VThread


def _thread(name="t"):
    def body(t):
        yield None

    return VThread(body, name=name)


def make_engine(**kw):
    eng = DelayEngine(**kw)
    return eng


def test_inactive_engine_is_inert():
    eng = make_engine()
    t = _thread()
    assert eng.on_hits(t, 5) == 0
    assert eng.reconcile(t) == 0


def test_hit_bumps_global_and_self_credits():
    """§3.4.3: the executing thread never pauses for its own samples."""
    eng = make_engine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=100, threads=[a, b])
    assert eng.on_hits(a, 3) == 0  # self-credited
    assert eng.global_count == 3
    assert eng.reconcile(b) == 300  # b owes three delays
    assert eng.reconcile(b) == 0    # paid up


def test_parallel_executors_cancel():
    """If every thread runs the line equally, nobody pauses (§3.4.3)."""
    eng = make_engine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=100, threads=[a, b])
    assert eng.on_hits(a, 2) == 0
    assert eng.on_hits(b, 2) == 0  # b's own hits cover the global
    assert eng.global_count == 2
    assert eng.reconcile(a) == 0
    assert eng.reconcile(b) == 0


def test_naive_mode_charges_everyone():
    """Pre-optimization scheme: the global rises on every hit."""
    eng = make_engine(minimal=False)
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=100, threads=[a, b])
    assert eng.on_hits(a, 2) == 0      # first mover: global catches up to 2
    assert eng.on_hits(b, 2) == 200    # b pays a's hits despite its own
    # both executed the line twice, yet the global is 4: each owes the
    # other's hits
    assert eng.global_count == 4
    assert eng.reconcile(a) == 200
    assert eng.reconcile(b) == 0       # already paid inside on_hits


def test_credit_skips_accumulated_delays():
    """A thread woken by a peer skips delays (§3.4.1)."""
    eng = make_engine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=50, threads=[a, b])
    eng.on_hits(a, 4)
    eng.credit(b)
    assert eng.reconcile(b) == 0


def test_spawned_thread_inherits_parent_local():
    """§3.4 'Thread creation': children inherit the parent's local count."""
    eng = make_engine()
    a = _thread("a")
    eng.begin(delay_ns=50, threads=[a])
    eng.on_hits(a, 4)          # a self-credited at 4
    child = _thread("child")
    eng.on_thread_created(child, a)
    assert eng.reconcile(child) == 0  # inherits 4, owes nothing

    orphanish = _thread("late")
    eng.on_thread_created(orphanish, None)
    assert eng.reconcile(orphanish) == 0  # starts at the global


def test_end_freezes_and_reports_count():
    eng = make_engine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=100, threads=[a, b])
    eng.on_hits(a, 7)
    assert eng.end() == 7
    assert not eng.active
    assert eng.reconcile(b) == 0  # nothing owed after the experiment


def test_experiments_reset_counters():
    eng = make_engine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=100, threads=[a, b])
    eng.on_hits(a, 5)
    eng.end()
    eng.begin(delay_ns=200, threads=[a, b])
    assert eng.global_count == 0
    assert eng.reconcile(b) == 0
    eng.on_hits(a, 1)
    assert eng.reconcile(b) == 200  # new delay size in effect


def test_zero_delay_counts_but_never_pauses():
    """Baseline (0%) experiments count hits but insert no delays."""
    eng = make_engine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=0, threads=[a, b])
    eng.on_hits(a, 9)
    assert eng.global_count == 9
    assert eng.reconcile(b) == 0


def test_nanosleep_excess_is_subtracted_from_future_pauses():
    """'Ensuring accurate timing': overshoot comes off the next pause."""
    eng = make_engine(jitter_ns=40, seed=123)
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=1000, threads=[a, b])
    eng.on_hits(a, 1)
    first = eng.reconcile(b)
    overshoot = first - 1000
    assert 0 <= overshoot <= 40
    eng.on_hits(a, 1)
    second = eng.reconcile(b)
    # the second pause is reduced by the first overshoot (plus new jitter)
    assert second <= 1000 + 40
    assert first + second <= 2000 + 80


def test_total_inserted_accounting():
    eng = make_engine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=10, threads=[a, b])
    eng.on_hits(a, 3)
    eng.reconcile(b)
    assert eng.total_inserted_ns == 30
