"""End-to-end sampled progress points (§3.3).

Sampled progress points never count visits exactly — they count IP samples
on the designated line — yet percent *changes* in rate are still measurable,
which is all the causal-profile math needs.  We verify that a profile built
from a sampled progress point agrees with one built from a source-level
progress point on the same program.
"""

import pytest

from repro.core.config import CozConfig
from repro.core.profile_data import ProfileData, build_line_profile
from repro.core.profiler import CausalProfiler
from repro.core.progress import ProgressPoint
from repro.sim import MS, US, Join, Program, Progress, Scope, SimConfig, Spawn, Work, line

HOT = line("w.c:1")      # the serial bottleneck (half of each item)
TAIL = line("w.c:9")     # the last line of each item: the sampled point


def make_program(seed=0, items=4000):
    def main(t):
        def worker(t2):
            for _ in range(items // 4):
                yield Work(HOT, US(60))
                yield Work(TAIL, US(60))
                yield Progress("item")   # source-level ground truth

        ws = []
        for _ in range(4):
            ws.append((yield Spawn(worker)))
        for w in ws:
            yield Join(w)

    return Program(main, config=SimConfig(seed=seed, cores=5, sample_period_ns=US(100)))


def profile_with(points, runs=8):
    data = ProfileData()
    for seed in range(runs):
        prof = CausalProfiler(
            CozConfig(
                scope=Scope.all_main(),
                fixed_line=HOT,
                speedup_schedule=[0, 50],
                experiment_duration_ns=MS(10),
                seed=seed,
            ),
            progress_points=points,
        )
        make_program(seed).run(hook=prof)
        data.merge(prof.data)
    return data


def test_sampled_point_tracks_source_point():
    points = [
        ProgressPoint("item"),
        ProgressPoint("item-sampled", kind="sampled", line=TAIL),
    ]
    data = profile_with(points)

    src = build_line_profile(data, HOT, "item", phase_correction=False)
    sam = build_line_profile(data, HOT, "item-sampled", phase_correction=False)
    assert src is not None and sam is not None

    s_src = src.point_at(50).program_speedup
    s_sam = sam.point_at(50).program_speedup
    # both mechanisms see the same ~25% effect of halving HOT (half the item)
    assert s_src == pytest.approx(0.25, abs=0.06)
    assert s_sam == pytest.approx(s_src, abs=0.08)


def test_sampled_point_counts_scale_with_rate():
    points = [ProgressPoint("item-sampled", kind="sampled", line=TAIL)]
    data = profile_with(points, runs=3)
    visits = [e.visits.get("item-sampled", 0) for e in data.experiments]
    assert sum(visits) > 0
