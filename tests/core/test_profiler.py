"""CausalProfiler experiment coordination (§3.2)."""

from collections import Counter

import pytest

from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.core.progress import ProgressPoint
from repro.sim import MS, US, Program, Progress, Scope, SimConfig, Work, line

HOT = line("w.c:1")


def make_program(total_ms=200, tick_us=200, config=None):
    def main(t):
        for _ in range(int(MS(total_ms) // US(tick_us))):
            yield Work(HOT, US(tick_us))
            yield Progress("tick")

    return Program(main, config=config or SimConfig(sample_period_ns=US(100)))


def run_profiled(cfg, total_ms=200):
    prof = CausalProfiler(cfg, [ProgressPoint("tick")])
    result = make_program(total_ms).run(hook=prof)
    return prof, result


def test_experiments_run_and_record():
    cfg = CozConfig(experiment_duration_ns=MS(10), cooloff_ns=MS(1))
    prof, _ = run_profiled(cfg)
    assert prof.experiments_run >= 10
    for e in prof.data.experiments:
        assert e.line == HOT
        assert e.duration_ns >= MS(10)
        assert e.visits["tick"] > 0


def test_speedup_selection_distribution():
    """0% is selected with ~the configured probability; others from the grid."""
    cfg = CozConfig(
        experiment_duration_ns=MS(2),
        cooloff_ns=US(100),
        zero_speedup_prob=0.5,
        seed=42,
    )
    prof, _ = run_profiled(cfg, total_ms=400)
    counts = Counter(e.speedup_pct for e in prof.data.experiments)
    n = sum(counts.values())
    assert n > 80
    assert 0.3 <= counts[0] / n <= 0.7
    assert all(pct % 5 == 0 and 0 <= pct <= 100 for pct in counts)


def test_speedup_schedule_cycles():
    cfg = CozConfig(
        experiment_duration_ns=MS(5),
        cooloff_ns=US(100),
        speedup_schedule=[0, 30, 60],
    )
    prof, _ = run_profiled(cfg)
    got = [e.speedup_pct for e in prof.data.experiments[:6]]
    assert got == [0, 30, 60, 0, 30, 60]


def test_experiment_length_doubles_on_few_visits():
    """§2: fewer than min_visits progress visits => double the length."""
    cfg = CozConfig(experiment_duration_ns=MS(1), min_visits=100, cooloff_ns=US(100))
    prof, _ = run_profiled(cfg, total_ms=100)
    durations = [e.duration_ns for e in prof.data.experiments]
    assert durations[0] == MS(1)
    assert any(d > MS(1) for d in durations[1:])
    # doubling is monotone until visits suffice
    assert durations == sorted(durations)[: len(durations)]


def test_run_info_recorded_on_end():
    cfg = CozConfig(experiment_duration_ns=MS(10))
    prof, result = run_profiled(cfg)
    assert len(prof.data.runs) == 1
    info = prof.data.runs[0]
    assert info.runtime_ns == result.runtime_ns
    assert info.line_samples[HOT] > 0


def test_sampling_overhead_charged():
    cfg = CozConfig(experiment_duration_ns=MS(10), sample_process_cost_ns=US(5))
    prof, result = run_profiled(cfg)
    assert result.profiler_cpu_ns > 0


def test_startup_cost_scales_with_debug_size():
    def main(t):
        yield Work(HOT, MS(1))

    small = Program(main, debug_size_kb=10)
    big = Program(main, debug_size_kb=10_000)
    cfg = CozConfig()
    r_small = small.run(hook=CausalProfiler(cfg, [ProgressPoint("tick")]))
    r_big = big.run(hook=CausalProfiler(cfg, [ProgressPoint("tick")]))
    assert r_big.runtime_ns > r_small.runtime_ns
    assert r_big.profiler_cpu_ns > r_small.profiler_cpu_ns


def test_disable_sampling_disables_experiments():
    cfg = CozConfig(enable_sampling=False)
    prof, result = run_profiled(cfg)
    assert prof.experiments_run == 0
    assert result.sample_count == 0


def test_disable_delays_forces_zero_speedups():
    cfg = CozConfig(enable_delays=False, experiment_duration_ns=MS(5), cooloff_ns=US(100))
    prof, result = run_profiled(cfg)
    assert prof.experiments_run > 5
    assert all(e.speedup_pct == 0 for e in prof.data.experiments)
    assert result.delay_ns == 0


def test_scope_restricts_selection():
    cfg = CozConfig(
        scope=Scope.only("elsewhere.c"),
        experiment_duration_ns=MS(5),
    )
    prof, _ = run_profiled(cfg)
    assert prof.experiments_run == 0  # HOT is out of scope; nothing selected


def test_config_validation():
    with pytest.raises(ValueError):
        CozConfig(zero_speedup_prob=1.5).validate()
    with pytest.raises(ValueError):
        CozConfig(experiment_duration_ns=0).validate()
    with pytest.raises(ValueError):
        CozConfig(speedup_values=(0, 120)).validate()
    with pytest.raises(ValueError):
        CozConfig(speedup_values=(5, 10)).validate()  # no baseline
    with pytest.raises(ValueError):
        CozConfig(min_visits=0).validate()
