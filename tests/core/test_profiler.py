"""CausalProfiler experiment coordination (§3.2)."""

from collections import Counter

import pytest

from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.core.progress import ProgressPoint
from repro.sim import MS, US, Program, Progress, Scope, SimConfig, Work, line

HOT = line("w.c:1")


def make_program(total_ms=200, tick_us=200, config=None):
    def main(t):
        for _ in range(int(MS(total_ms) // US(tick_us))):
            yield Work(HOT, US(tick_us))
            yield Progress("tick")

    return Program(main, config=config or SimConfig(sample_period_ns=US(100)))


def run_profiled(cfg, total_ms=200):
    prof = CausalProfiler(cfg, [ProgressPoint("tick")])
    result = make_program(total_ms).run(hook=prof)
    return prof, result


def test_experiments_run_and_record():
    cfg = CozConfig(experiment_duration_ns=MS(10), cooloff_ns=MS(1))
    prof, _ = run_profiled(cfg)
    assert prof.experiments_run >= 10
    for e in prof.data.experiments:
        assert e.line == HOT
        assert e.duration_ns >= MS(10)
        assert e.visits["tick"] > 0


def test_speedup_selection_distribution():
    """0% is selected with ~the configured probability; others from the grid."""
    cfg = CozConfig(
        experiment_duration_ns=MS(2),
        cooloff_ns=US(100),
        zero_speedup_prob=0.5,
        seed=42,
    )
    prof, _ = run_profiled(cfg, total_ms=400)
    counts = Counter(e.speedup_pct for e in prof.data.experiments)
    n = sum(counts.values())
    assert n > 80
    assert 0.3 <= counts[0] / n <= 0.7
    assert all(pct % 5 == 0 and 0 <= pct <= 100 for pct in counts)


def test_speedup_schedule_cycles():
    cfg = CozConfig(
        experiment_duration_ns=MS(5),
        cooloff_ns=US(100),
        speedup_schedule=[0, 30, 60],
    )
    prof, _ = run_profiled(cfg)
    got = [e.speedup_pct for e in prof.data.experiments[:6]]
    assert got == [0, 30, 60, 0, 30, 60]


def test_experiment_length_doubles_on_few_visits():
    """§2: fewer than min_visits progress visits => double the length."""
    cfg = CozConfig(experiment_duration_ns=MS(1), min_visits=100, cooloff_ns=US(100))
    prof, _ = run_profiled(cfg, total_ms=100)
    durations = [e.duration_ns for e in prof.data.experiments]
    assert durations[0] == MS(1)
    assert any(d > MS(1) for d in durations[1:])
    # doubling is monotone until visits suffice
    assert durations == sorted(durations)[: len(durations)]


def test_run_info_recorded_on_end():
    cfg = CozConfig(experiment_duration_ns=MS(10))
    prof, result = run_profiled(cfg)
    assert len(prof.data.runs) == 1
    info = prof.data.runs[0]
    assert info.runtime_ns == result.runtime_ns
    assert info.line_samples[HOT] > 0


def test_sampling_overhead_charged():
    cfg = CozConfig(experiment_duration_ns=MS(10), sample_process_cost_ns=US(5))
    prof, result = run_profiled(cfg)
    assert result.profiler_cpu_ns > 0


def test_startup_cost_scales_with_debug_size():
    def main(t):
        yield Work(HOT, MS(1))

    small = Program(main, debug_size_kb=10)
    big = Program(main, debug_size_kb=10_000)
    cfg = CozConfig()
    r_small = small.run(hook=CausalProfiler(cfg, [ProgressPoint("tick")]))
    r_big = big.run(hook=CausalProfiler(cfg, [ProgressPoint("tick")]))
    assert r_big.runtime_ns > r_small.runtime_ns
    assert r_big.profiler_cpu_ns > r_small.profiler_cpu_ns


def test_disable_sampling_disables_experiments():
    cfg = CozConfig(enable_sampling=False)
    prof, result = run_profiled(cfg)
    assert prof.experiments_run == 0
    assert result.sample_count == 0


def test_disable_delays_forces_zero_speedups():
    cfg = CozConfig(enable_delays=False, experiment_duration_ns=MS(5), cooloff_ns=US(100))
    prof, result = run_profiled(cfg)
    assert prof.experiments_run > 5
    assert all(e.speedup_pct == 0 for e in prof.data.experiments)
    assert result.delay_ns == 0


def test_scope_restricts_selection():
    cfg = CozConfig(
        scope=Scope.only("elsewhere.c"),
        experiment_duration_ns=MS(5),
    )
    prof, _ = run_profiled(cfg)
    assert prof.experiments_run == 0  # HOT is out of scope; nothing selected


def _partial_delay(prof):
    """Delay booked for an experiment still in flight when the run ended."""
    if prof.state != "running":
        return 0
    return prof.delays.global_count * prof._delay_ns


def test_partial_experiment_delays_stay_on_the_books():
    """A program ending mid-experiment keeps the partial delays in the run
    total: effective time is runtime minus *all* inserted delay, not just
    the completed experiments' share."""
    cfg = CozConfig(
        experiment_duration_ns=MS(10), cooloff_ns=MS(1), speedup_schedule=[50]
    )
    prof, result = run_profiled(cfg, total_ms=25)
    assert prof.state == "running"  # the run really ended mid-experiment
    partial = _partial_delay(prof)
    assert partial > 0
    completed = sum(e.inserted_delay_ns for e in prof.data.experiments)
    info = prof.data.runs[0]
    assert info.total_delay_ns == completed + partial
    assert info.effective_ns == result.runtime_ns - completed - partial


def test_truncated_run_matches_longer_run_minus_known_delta():
    """Same seed, longer program: the shared prefix books identically, and
    the effective-time difference is exactly the extra runtime minus the
    extra delay reconstructable from the experiment records alone."""
    def go(total_ms):
        cfg = CozConfig(
            experiment_duration_ns=MS(10), cooloff_ns=MS(1), speedup_schedule=[50]
        )
        return run_profiled(cfg, total_ms=total_ms)

    prof_a, res_a = go(25)
    prof_b, res_b = go(35)
    assert prof_a.state == "running" and prof_b.state == "running"

    # deterministic single-threaded prefix: shared experiments are identical
    n = len(prof_a.data.experiments)
    assert n < len(prof_b.data.experiments)
    for ea, eb in zip(prof_a.data.experiments, prof_b.data.experiments):
        assert (ea.start_ns, ea.speedup_pct, ea.delay_count) == \
            (eb.start_ns, eb.speedup_pct, eb.delay_count)

    delta = (
        sum(e.inserted_delay_ns for e in prof_b.data.experiments[n:])
        + _partial_delay(prof_b)
        - _partial_delay(prof_a)
    )
    booked_a = prof_a.data.runs[0].total_delay_ns
    booked_b = prof_b.data.runs[0].total_delay_ns
    assert booked_b - booked_a == delta
    assert prof_b.data.total_effective_ns() == (
        prof_a.data.total_effective_ns() + (res_b.runtime_ns - res_a.runtime_ns) - delta
    )


def test_jitter_enabled_runs_are_deterministic():
    """Nanosleep jitter perturbs the timeline but is seeded: same request
    twice gives bit-identical data, and the jitter really did take effect."""
    from repro.apps import registry
    from repro.harness.runner import profile_app

    def go(jitter):
        spec = registry.build("example", rounds=30)
        cfg = CozConfig(
            scope=spec.scope,
            experiment_duration_ns=MS(40),
            nanosleep_jitter_ns=jitter,
        )
        return profile_app(spec, runs=2, coz_config=cfg)

    first = go(5000)
    second = go(5000)
    assert first.data == second.data
    assert [r.runtime_ns for r in first.run_results] == \
        [r.runtime_ns for r in second.run_results]
    plain = go(0)
    assert [r.runtime_ns for r in first.run_results] != \
        [r.runtime_ns for r in plain.run_results]


def test_config_validation():
    with pytest.raises(ValueError):
        CozConfig(zero_speedup_prob=1.5).validate()
    with pytest.raises(ValueError):
        CozConfig(experiment_duration_ns=0).validate()
    with pytest.raises(ValueError):
        CozConfig(speedup_values=(0, 120)).validate()
    with pytest.raises(ValueError):
        CozConfig(speedup_values=(5, 10)).validate()  # no baseline
    with pytest.raises(ValueError):
        CozConfig(min_visits=0).validate()
