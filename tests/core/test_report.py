"""Report rendering: tables, ASCII graphs, CSV, Coz file format."""

from repro.core.experiment import ExperimentResult
from repro.core.profile_data import CausalProfile, LineProfile, ProfileData, ProfilePoint, RunInfo
from repro.core.report import render_line_graph, render_profile, to_coz_format, to_csv
from repro.sim.clock import MS
from repro.sim.source import line

L = line("r.c:10")


def profile():
    pts = [
        ProfilePoint(0, 0.0, 0.0, 5, 50),
        ProfilePoint(50, 0.08, 0.01, 3, 30),
        ProfilePoint(100, 0.15, 0.02, 2, 20),
    ]
    lp = LineProfile(line=L, progress_point="p", points=pts, phase_factor=1.0, total_samples=42)
    return CausalProfile("p", [lp])


def test_render_profile_contains_line_and_slope():
    out = render_profile(profile())
    assert "r.c:10" in out
    assert "optimize" in out
    assert "p" in out


def test_render_line_graph_shape():
    out = render_line_graph(profile().lines[0], width=40, height=8)
    assert "r.c:10" in out
    assert "*" in out
    assert "100%" in out


def test_csv_round_trips_points():
    out = to_csv(profile())
    lines = out.strip().splitlines()
    assert lines[0].startswith("line,progress_point")
    assert len(lines) == 4  # header + 3 points
    assert "r.c:10,p,50,8.0000" in out


def test_coz_format_records():
    d = ProfileData()
    d.add_experiment(
        ExperimentResult(
            line=L, speedup_pct=25, delay_ns=250_000, start_ns=0, end_ns=MS(10),
            delay_count=3, selected_samples=7, visits={"p": 11},
        )
    )
    d.add_run(RunInfo(runtime_ns=MS(100), total_delay_ns=0))
    out = to_coz_format(d)
    assert out.startswith("startup\ttime=")
    assert "experiment\tselected=r.c:10\tspeedup=0.25\tduration=10000000\tselected-samples=7" in out
    assert "progress-point\tname=p\ttype=source\tdelta=11" in out
