"""Progress points: source, breakpoint, sampled; latency via Little's law."""

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.progress import ProgressPoint, ProgressTracker
from repro.sim.clock import MS
from repro.sim.source import line

L = line("pp.c:5")


def test_point_validation():
    with pytest.raises(ValueError):
        ProgressPoint("x", kind="bogus")
    with pytest.raises(ValueError):
        ProgressPoint("x", kind="breakpoint")  # needs a line
    ProgressPoint("x", kind="breakpoint", line=L)  # ok


def test_source_visits_counted_even_unregistered():
    tr = ProgressTracker([ProgressPoint("a")])
    tr.on_source_visit("a")
    tr.on_source_visit("lazy")  # Coz counts every COZ_PROGRESS
    assert tr.snapshot() == {"a": 1, "lazy": 1}


def test_breakpoint_visits_by_line():
    tr = ProgressTracker([ProgressPoint("bp", kind="breakpoint", line=L)])
    tr.on_line_visit(L)
    tr.on_line_visit(line("pp.c:999"))  # unwatched
    assert tr.snapshot() == {"bp": 1}
    assert tr.breakpoint_lines == [L]


def test_sampled_points_count_samples():
    tr = ProgressTracker([ProgressPoint("sp", kind="sampled", line=L)])
    tr.on_sample_line(L)
    tr.on_sample_line(L)
    tr.on_sample_line(None)
    tr.on_sample_line(line("pp.c:1"))
    assert tr.snapshot() == {"sp": 2}


def test_delta_between_snapshots():
    before = {"a": 3}
    after = {"a": 10, "b": 2}
    assert ProgressTracker.delta(before, after) == {"a": 7, "b": 2}


def test_latency_via_littles_law():
    """W = L / lambda with L from begin/end count gaps."""
    e = ExperimentResult(
        line=L,
        speedup_pct=0,
        delay_ns=0,
        start_ns=0,
        end_ns=MS(100),
        delay_count=0,
        selected_samples=0,
        visits={"begin": 1000, "end": 1000},
        counts_before={"begin": 0, "end": 0},
        counts_after={"begin": 1000, "end": 996},
    )
    # arrival rate = 1000 visits / 100ms; average in-flight = (0+4)/2 = 2
    lam = 1000 / MS(100)
    assert e.in_flight("begin", "end") == 2.0
    assert e.latency_ns("begin", "end") == pytest.approx(2.0 / lam)


def test_latency_none_without_arrivals():
    e = ExperimentResult(
        line=L, speedup_pct=0, delay_ns=0, start_ns=0, end_ns=MS(1),
        delay_count=0, selected_samples=0, visits={},
    )
    assert e.latency_ns("begin", "end") is None
