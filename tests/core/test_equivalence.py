"""Figure 3: virtual speedups are equivalent to actual speedups.

Program: two threads, `f` (the selected line) and `g` running concurrently
in rounds.  We compare, for a range of speedups:

* **actual**: rebuild the program with f's cost scaled down and measure the
  real progress period;
* **virtual**: run the original program under the profiler with a fixed-line
  experiment at the same percentage and read the measured program speedup.

The two must agree within sampling noise — the core soundness claim of the
paper (§3.4, eqs. 1-4).
"""

import pytest

from repro.core.config import CozConfig
from repro.core.progress import ProgressPoint
from repro.harness.runner import profile_program
from repro.sim import MS, US, BarrierWait, Join, Program, Progress, Scope, SimConfig, Spawn, Work, line
from repro.sim.sync import Barrier

F = line("fg.c:10")
G = line("fg.c:20")
F_NS = MS(2.0)
G_NS = MS(3.0)


def build(f_factor=1.0, rounds=400):
    f_cost = int(F_NS * f_factor)

    def make(seed=0):
        def main(t):
            b = Barrier(2)

            def ft(t2):
                for _ in range(rounds):
                    if f_cost:
                        yield Work(F, f_cost)
                    serial = yield BarrierWait(b)
                    if serial:
                        yield Progress("round")

            def gt(t2):
                for _ in range(rounds):
                    yield Work(G, G_NS)
                    serial = yield BarrierWait(b)
                    if serial:
                        yield Progress("round")

            a = yield Spawn(ft)
            c = yield Spawn(gt)
            yield Join(a)
            yield Join(c)

        cfg = SimConfig(seed=seed, cores=4, sample_period_ns=US(250), quantum_ns=MS(0.5))
        return Program(main, config=cfg)

    return make


def actual_period(f_factor):
    r = build(f_factor)(0).run()
    return r.runtime_ns / r.progress("round")


def virtual_speedup_measurement(pct, runs=4):
    outcome = profile_program(
        build(1.0),
        [ProgressPoint("round")],
        "round",
        runs=runs,
        coz_config=CozConfig(
            scope=Scope.all_main(),
            fixed_line=F,
            speedup_schedule=[0, pct],
            experiment_duration_ns=MS(60),
        ),
    )
    lp = outcome.profile.get(F)
    assert lp is not None
    return lp.point_at(pct).program_speedup


@pytest.mark.parametrize("pct", [25, 50, 100])
def test_virtual_matches_actual(pct):
    base = actual_period(1.0)
    real = actual_period(1.0 - pct / 100.0)
    actual = 1.0 - real / base
    virtual = virtual_speedup_measurement(pct)
    # g (3 ms) dominates the round, so speeding f has zero true effect;
    # both measurements must agree on that within noise
    assert actual == pytest.approx(0.0, abs=0.01)
    assert virtual == pytest.approx(actual, abs=0.035)


def test_virtual_matches_actual_when_f_critical():
    """Make f the critical path (f=2ms+2ms=4ms > g=3ms): speeding f helps."""
    F2 = line("fg.c:11")

    def build2(f_factor=1.0, rounds=300):
        f_cost = int(MS(4.0) * f_factor)

        def make(seed=0):
            def main(t):
                b = Barrier(2)

                def ft(t2):
                    for _ in range(rounds):
                        if f_cost:
                            yield Work(F2, f_cost)
                        serial = yield BarrierWait(b)
                        if serial:
                            yield Progress("round")

                def gt(t2):
                    for _ in range(rounds):
                        yield Work(G, G_NS)
                        serial = yield BarrierWait(b)
                        if serial:
                            yield Progress("round")

                a = yield Spawn(ft)
                c = yield Spawn(gt)
                yield Join(a)
                yield Join(c)

            cfg = SimConfig(seed=seed, cores=4, sample_period_ns=US(250), quantum_ns=MS(0.5))
            return Program(main, config=cfg)

        return make

    base = build2(1.0)(0).run()
    real = build2(0.5)(0).run()
    p0 = base.runtime_ns / base.progress("round")
    p1 = real.runtime_ns / real.progress("round")
    actual = 1.0 - p1 / p0  # max(2,3)/max(4,3): 4 -> 3 ms: 25%

    outcome = profile_program(
        build2(1.0),
        [ProgressPoint("round")],
        "round",
        runs=4,
        coz_config=CozConfig(
            scope=Scope.all_main(),
            fixed_line=F2,
            speedup_schedule=[0, 50],
            experiment_duration_ns=MS(60),
        ),
    )
    virtual = outcome.profile.get(F2).point_at(50).program_speedup
    assert actual == pytest.approx(0.25, abs=0.01)
    assert virtual == pytest.approx(actual, abs=0.05)
