"""Binary columnar wire for ProfileData (repro.core.binwire).

The codec's contract is strict: ``from_bytes(to_bytes(data))`` must render
the *same JSON bytes* as ``data`` itself — the binary wire is an identity-
preserving transport, not a lossy compression.  Every test here asserts
byte equality on the JSON view, not structural equality, because the JSON
wire is what fingerprints, journals, and the service result docs
canonicalize.
"""

import json

import pytest

from repro.core import binwire
from repro.core.experiment import ExperimentResult
from repro.core.profile_data import ProfileData, RunFailure, RunInfo
from repro.sim.clock import MS
from repro.sim.source import line

L1 = line("alpha.c:10")
L2 = line("alpha.c:999")
L3 = line("beta.c:7")


def exp(src, pct, start=0, eff_ms=10, delay_count=3, delay_ns=1000):
    dur = MS(eff_ms) + delay_count * delay_ns
    return ExperimentResult(
        line=src,
        speedup_pct=pct,
        delay_ns=delay_ns,
        start_ns=start,
        end_ns=start + dur,
        delay_count=delay_count,
        selected_samples=17,
        visits={"end": 5, "start": 2},
    )


def sample_data(seed=0):
    d = ProfileData()
    d.add_experiment(exp(L1, 0, start=seed))
    d.add_experiment(exp(L1, 50, start=MS(20) + seed))
    d.add_experiment(exp(L2, 25, start=MS(40) + seed))
    run = RunInfo(runtime_ns=MS(1000) + seed, total_delay_ns=MS(3))
    run.line_samples.update({L2: 40, L1: 120})
    d.add_run(run)
    run2 = RunInfo(runtime_ns=MS(990), total_delay_ns=0)
    run2.line_samples.update({L3: 9})
    d.add_run(run2)
    return d


def assert_wire_identity(data):
    wire = data.to_json()
    blob = data.to_bytes()
    decoded = ProfileData.from_bytes(blob)
    assert decoded.to_json() == wire
    assert decoded == data
    return blob


def test_round_trip_byte_identity():
    blob = assert_wire_identity(sample_data())
    assert binwire.is_profile_blob(blob)


def test_round_trip_empty_profile():
    assert_wire_identity(ProfileData())


def test_round_trip_with_failures():
    d = sample_data()
    d.add_failure(RunFailure(
        index=2, seed=7, error_type="ThreadCrashFault",
        message="injected crash on thread 3", virtual_ns=MS(12), attempts=2,
    ))
    d.add_failure(RunFailure(
        index=3, seed=8, error_type="WorkerHungError", message="",
    ))
    wire = json.loads(d.to_json())
    assert "failures" in wire  # degraded sessions keep their failure records
    assert_wire_identity(d)


def test_round_trip_huge_ints_uses_json_fallback():
    # values outside i64 cannot ride the packed integer columns; the codec
    # must fall back (per column) without breaking identity
    d = sample_data()
    run = RunInfo(runtime_ns=2 ** 67, total_delay_ns=0)
    run.line_samples.update({L1: 2 ** 70})
    d.add_run(run)
    assert_wire_identity(d)


def test_binary_decode_matches_v1_and_v2_json_decode():
    d = sample_data()
    v2_doc = d.to_json()
    # hand-build the v1 wire (inline [file, lineno] pairs, no line table)
    doc = json.loads(v2_doc)
    lines = doc.pop("lines")
    doc["version"] = 1
    for e in doc["experiments"]:
        e["line"] = lines[e["line"]]
    for r in doc["runs"]:
        r["line_samples"] = [
            [lines[i][0], lines[i][1], n] for i, n in r["line_samples"]
        ]
    v1_doc = json.dumps(doc)
    from_v1 = ProfileData.from_json(v1_doc)
    from_v2 = ProfileData.from_json(v2_doc)
    from_bin = ProfileData.from_bytes(d.to_bytes())
    assert from_v1.to_json() == v2_doc
    assert from_v2.to_json() == v2_doc
    assert from_bin.to_json() == v2_doc


def test_rejects_unknown_version_and_garbage():
    blob = bytearray(sample_data().to_bytes())
    assert blob[:4] == binwire.MAGIC
    blob[4] = 99  # future container version
    with pytest.raises(binwire.BinaryWireError):
        ProfileData.from_bytes(bytes(blob))
    with pytest.raises(binwire.BinaryWireError):
        ProfileData.from_bytes(b"definitely not a profile blob")
    assert not binwire.is_profile_blob(b"nope")


def test_truncated_blob_raises():
    blob = sample_data().to_bytes()
    with pytest.raises(binwire.BinaryWireError):
        ProfileData.from_bytes(blob[: len(blob) // 2])


def test_struct_fallback_is_byte_identical_to_numpy(monkeypatch):
    d = sample_data()
    with_np = d.to_bytes()
    monkeypatch.setattr(binwire, "_np", None)
    without_np = d.to_bytes()
    assert with_np == without_np
    assert ProfileData.from_bytes(without_np).to_json() == d.to_json()


def test_large_profile_takes_compressed_path():
    d = ProfileData()
    for i in range(40):
        d.add_experiment(exp(L1 if i % 2 else L2, (i % 4) * 25, start=i * MS(5)))
    for i in range(20):
        run = RunInfo(runtime_ns=MS(500) + i, total_delay_ns=i * 1000)
        run.line_samples.update({L1: 100 + i, L2: 50, L3: i})
        d.add_run(run)
    blob = assert_wire_identity(d)
    # body big enough to qualify for compression; flag byte records it
    assert len(d.to_json().encode()) >= binwire._COMPRESS_MIN
    assert len(blob) < len(d.to_json().encode())


def test_wire_ratio_beats_json_substantially():
    d = ProfileData()
    for i in range(30):
        d.add_experiment(exp(L1, (i % 4) * 25, start=i * MS(5)))
    for i in range(30):
        run = RunInfo(runtime_ns=MS(500), total_delay_ns=0)
        run.line_samples.update({L1: 100, L2: 50 + i})
        d.add_run(run)
    json_bytes = len(d.to_json().encode())
    bin_bytes = len(d.to_bytes())
    assert bin_bytes * 5 <= json_bytes  # the PR's >=5x acceptance floor


def test_interned_indices_do_not_leak_across_documents():
    # two profiles sharing some lines: each document's line table must be
    # local (indices dense from 0, first-encounter order), regardless of
    # what the process-global intern table saw first
    a = sample_data()
    b = ProfileData()
    b.add_experiment(exp(L3, 0))
    b.add_experiment(exp(L1, 75, start=MS(30)))
    a.to_bytes()  # interns a's lines first
    doc_b = json.loads(b.to_json())
    assert doc_b["lines"] == [["beta.c", 7], ["alpha.c", 10]]
    assert [e["line"] for e in doc_b["experiments"]] == [0, 1]
    assert_wire_identity(b)
    assert_wire_identity(a)
