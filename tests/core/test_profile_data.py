"""Profile combination rules (§2 'Producing a causal profile')."""

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.profile_data import (
    ProfileData,
    RunInfo,
    build_causal_profile,
    build_line_profile,
)
from repro.sim.clock import MS
from repro.sim.source import line

L = line("x.c:1")
L2 = line("x.c:2")


def exp(src, pct, visits, eff_ms, delay_count=0, delay_ns=0, s_obs=10, start=0):
    dur = MS(eff_ms) + delay_count * delay_ns
    return ExperimentResult(
        line=src,
        speedup_pct=pct,
        delay_ns=delay_ns,
        start_ns=start,
        end_ns=start + dur,
        delay_count=delay_count,
        selected_samples=s_obs,
        visits={"p": visits},
    )


def data_with(experiments, runtime_ms=1000, line_samples=None):
    d = ProfileData()
    for e in experiments:
        d.add_experiment(e)
    info = RunInfo(runtime_ns=MS(runtime_ms), total_delay_ns=0)
    if line_samples:
        info.line_samples.update(line_samples)
    d.add_run(info)
    return d


def test_effective_duration_subtracts_delays():
    e = exp(L, 50, 10, eff_ms=10, delay_count=4, delay_ns=MS(1))
    assert e.duration_ns == MS(14)
    assert e.inserted_delay_ns == MS(4)
    assert e.effective_ns == MS(10)


def test_line_without_baseline_discarded():
    d = data_with([exp(L, 25, 10, 10), exp(L, 50, 10, 10)])
    assert build_line_profile(d, L, "p") is None


def test_program_speedup_from_periods():
    d = data_with(
        [exp(L, 0, 10, 10), exp(L, 50, 10, 8)],
        line_samples={L: 100},
    )
    lp = build_line_profile(d, L, "p", phase_correction=False)
    pt = lp.point_at(50)
    # period went 1.0 -> 0.8 ms/visit: 20% program speedup
    assert pt.program_speedup == pytest.approx(0.20)


def test_same_variable_experiments_combine_by_summing():
    d = data_with(
        [
            exp(L, 0, 10, 10),
            exp(L, 50, 5, 5),   # period 1.0
            exp(L, 50, 15, 7),  # period 0.466; combined (5+7)/(5+15) = 0.6
        ],
        line_samples={L: 100},
    )
    lp = build_line_profile(d, L, "p", phase_correction=False)
    assert lp.point_at(50).program_speedup == pytest.approx(0.4)
    assert lp.point_at(50).n_experiments == 2


def test_min_speedup_amounts_filter():
    exps = [exp(L, 0, 10, 10), exp(L, 25, 10, 9)]
    exps += [exp(L2, pct, 10, 10 - pct // 25) for pct in (0, 25, 50, 75, 100)]
    d = data_with(exps, line_samples={L: 50, L2: 50})
    profile = build_causal_profile(d, "p", min_speedup_amounts=5)
    assert profile.get(L) is None       # only 2 distinct speedups
    assert profile.get(L2) is not None  # 5 distinct speedups


def test_ranking_by_slope():
    exps = []
    for pct, eff in ((0, 10), (50, 5)):        # strong line: 50% at half
        exps.append(exp(L, pct, 10, eff))
    for pct, eff in ((0, 10), (50, 10)):       # flat line
        exps.append(exp(L2, pct, 10, eff))
    d = data_with(exps, line_samples={L: 50, L2: 50})
    profile = build_causal_profile(d, "p", min_speedup_amounts=2,
                                   phase_correction=False)
    ranked = profile.ranked()
    assert [lp.line for lp in ranked] == [L, L2]
    assert ranked[0].slope > ranked[1].slope


def test_contention_detection():
    exps = [exp(L, 0, 10, 10), exp(L, 50, 10, 14)]  # slowdown!
    d = data_with(exps, line_samples={L: 50})
    profile = build_causal_profile(d, "p", min_speedup_amounts=2,
                                   phase_correction=False)
    lp = profile.get(L)
    assert lp.is_contended()
    assert profile.contended() == [lp]


def test_phase_correction_scales_down_phased_lines():
    """A line sampled only 10% of the run gets its speedup scaled by ~t_A/T."""
    exps = [
        exp(L, 0, 10, 10, s_obs=100),
        exp(L, 50, 10, 8, s_obs=100),
    ]
    # line active only 36ms of a 360ms run (sample density matches exps)
    d = data_with(exps, runtime_ms=360, line_samples={L: 200})
    raw = build_line_profile(d, L, "p", phase_correction=False)
    corrected = build_line_profile(d, L, "p", phase_correction=True)
    assert corrected.phase_factor < 1.0
    assert corrected.point_at(50).program_speedup < raw.point_at(50).program_speedup
    # factor = (t_obs/s_obs) * (s/T) = (18ms/200) * (200/360ms) = 0.05
    assert corrected.phase_factor == pytest.approx(0.05, rel=0.05)


def test_phase_correction_capped_at_one():
    exps = [exp(L, 0, 10, 10, s_obs=5), exp(L, 50, 10, 8, s_obs=5)]
    d = data_with(exps, runtime_ms=20, line_samples={L: 1000})
    lp = build_line_profile(d, L, "p", phase_correction=True)
    assert lp.phase_factor == 1.0


def test_merge_accumulates_runs():
    d1 = data_with([exp(L, 0, 10, 10)], line_samples={L: 10})
    d2 = data_with([exp(L, 50, 10, 8)], line_samples={L: 10})
    d1.merge(d2)
    assert len(d1.experiments) == 2
    assert len(d1.runs) == 2
    assert d1.total_line_samples(L) == 20


def test_progress_names_and_lines_enumeration():
    d = data_with([exp(L, 0, 10, 10), exp(L2, 0, 5, 10)])
    assert d.progress_names() == ["p"]
    assert d.lines() == [L, L2]


# -- wire format (cross-process result transfer) -----------------------------------

def test_json_round_trip_is_lossless():
    d = data_with(
        [exp(L, 0, 10, 10, delay_count=3, delay_ns=MS(1)), exp(L2, 50, 5, 8)],
        runtime_ms=360,
        line_samples={L: 200, L2: 17},
    )
    d.experiments[0].counts_before = {"p": 4}
    d.experiments[0].counts_after = {"p": 14}
    restored = ProfileData.from_json(d.to_json())
    assert restored == d
    assert restored.experiments == d.experiments
    assert restored.runs == d.runs
    assert restored.total_line_samples(L) == 200


def test_merge_after_round_trip_equals_direct_merge():
    d1 = data_with([exp(L, 0, 10, 10)], line_samples={L: 10})
    d2 = data_with([exp(L, 50, 10, 8)], line_samples={L: 10})
    direct = ProfileData()
    direct.merge(data_with([exp(L, 0, 10, 10)], line_samples={L: 10}))
    direct.merge(data_with([exp(L, 50, 10, 8)], line_samples={L: 10}))
    via_wire = ProfileData()
    via_wire.merge(ProfileData.from_json(d1.to_json()))
    via_wire.merge(ProfileData.from_json(d2.to_json()))
    assert via_wire == direct
    lp_direct = build_line_profile(direct, L, "p", phase_correction=False)
    lp_wire = build_line_profile(via_wire, L, "p", phase_correction=False)
    assert lp_wire.point_at(50).program_speedup == lp_direct.point_at(50).program_speedup


def test_from_json_rejects_unknown_wire_version():
    d = data_with([exp(L, 0, 10, 10)])
    doc = d.to_json().replace(
        f'"version": {ProfileData.WIRE_VERSION}', '"version": 99'
    )
    with pytest.raises(ValueError, match="wire version"):
        ProfileData.from_json(doc)


def test_from_json_accepts_wire_version_1():
    # documents recorded before the interned line table (journals, on-disk
    # profiles) carry inline [file, lineno] pairs and no "lines" table
    import json

    d = data_with([exp(L, 0, 10, 10), exp(L2, 0, 5, 10)], line_samples={L: 7})
    doc = json.loads(d.to_json())
    table = doc.pop("lines")
    doc["version"] = 1
    for e in doc["experiments"]:
        e["line"] = table[e["line"]]
    for r in doc["runs"]:
        r["line_samples"] = [table[i] + [n] for i, n in r["line_samples"]]
    assert ProfileData.from_json(json.dumps(doc)) == d


def test_wire_v2_interns_lines_in_shared_table():
    import json

    d = data_with(
        [exp(L, 0, 10, 10), exp(L, 50, 10, 8), exp(L2, 0, 5, 10)],
        line_samples={L: 7, L2: 3},
    )
    doc = json.loads(d.to_json())
    assert doc["version"] == ProfileData.WIRE_VERSION
    assert [L.file, L.lineno] in doc["lines"]
    # three experiments over two lines share two table slots
    assert len(doc["lines"]) == 2
    assert all(isinstance(e["line"], int) for e in doc["experiments"])
    assert all(
        isinstance(i, int) for r in doc["runs"] for i, _n in r["line_samples"]
    )
    assert ProfileData.from_json(json.dumps(doc)) == d


def test_profile_data_equality_semantics():
    d1 = data_with([exp(L, 0, 10, 10)], line_samples={L: 10})
    d2 = data_with([exp(L, 0, 10, 10)], line_samples={L: 10})
    assert d1 == d2
    d2.add_experiment(exp(L, 50, 10, 8))
    assert d1 != d2
    assert d1 != "not profile data"
