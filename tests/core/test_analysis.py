"""Profile interpretation: prediction, summaries, top line."""

import pytest

from repro.core.analysis import predict_program_speedup, summarize, top_line
from repro.core.profile_data import CausalProfile, LineProfile, ProfilePoint
from repro.sim.source import line

L = line("a.c:1")
L2 = line("a.c:2")


def make_profile(points, src=L):
    pts = [
        ProfilePoint(speedup_pct=p, program_speedup=s, se=0.0, n_experiments=3, visits=30)
        for p, s in points
    ]
    return LineProfile(line=src, progress_point="p", points=pts,
                       phase_factor=1.0, total_samples=100)


def test_predict_interpolates():
    lp = make_profile([(0, 0.0), (50, 0.10), (100, 0.20)])
    assert predict_program_speedup(lp, 25) == pytest.approx(0.05)
    assert predict_program_speedup(lp, 50) == pytest.approx(0.10)
    assert predict_program_speedup(lp, 75) == pytest.approx(0.15)


def test_predict_clamps_to_measured_range():
    lp = make_profile([(0, 0.0), (50, 0.10)])
    assert predict_program_speedup(lp, 90) == pytest.approx(0.10)
    assert predict_program_speedup(lp, -5) == pytest.approx(0.0)


def test_predict_exact_point_lookup():
    lp = make_profile([(0, 0.0), (30, 0.07), (60, 0.09)])
    assert predict_program_speedup(lp, 30) == pytest.approx(0.07)


def test_summarize_ranks_and_classifies():
    strong = make_profile([(0, 0.0), (50, 0.2), (100, 0.4)], src=L)
    contended = make_profile([(0, 0.0), (50, -0.1), (100, -0.25)], src=L2)
    profile = CausalProfile("p", [contended, strong])
    opps = summarize(profile)
    assert [o.line for o in opps] == [L, L2]
    assert opps[0].kind == "optimize"
    assert opps[1].kind == "contention"
    assert opps[0].rank == 1


def test_summarize_top_n():
    lps = [make_profile([(0, 0.0), (100, 0.01 * i)], src=line(f"a.c:{i}")) for i in range(1, 6)]
    profile = CausalProfile("p", lps)
    assert len(summarize(profile, top=2)) == 2


def test_top_line():
    strong = make_profile([(0, 0.0), (100, 0.4)], src=L)
    weak = make_profile([(0, 0.0), (100, 0.05)], src=L2)
    assert top_line(CausalProfile("p", [weak, strong])) == L
    assert top_line(CausalProfile("p", [])) is None


def test_no_impact_classification():
    flat = make_profile([(0, 0.0), (50, 0.002), (100, -0.003)])
    opp = summarize(CausalProfile("p", [flat]))[0]
    assert opp.kind == "no-impact"
