"""Invariant-audit layer (:mod:`repro.core.audit`).

The regression tests here subclass :class:`CausalProfiler` to replicate two
historical accounting bugs — dropping a partial experiment's delays, and
never booking outstanding nanosleep excess — and assert the audit *fails*
on them while passing on the fixed profiler.  That is the audit layer's
contract: a reintroduced leak must show up as a red invariant, not as a
silently skewed profile.
"""

from dataclasses import replace

import pytest

from repro.apps import registry
from repro.core.audit import (
    AuditReport,
    InvariantCheck,
    audit_profile_data,
    run_doctor,
)
from repro.core.config import CozConfig
from repro.core.profile_data import ProfileData, RunInfo
from repro.core.profiler import CausalProfiler
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def _example_spec(rounds=30):
    return registry.build("example", rounds=rounds)


def _cfg(scope, **kw):
    return CozConfig(scope=scope, experiment_duration_ns=MS(40), **kw)


# -- report plumbing ---------------------------------------------------------------

def test_report_wire_roundtrip():
    rep = AuditReport()
    rep.add(InvariantCheck("a", True, checked=3))
    rep.add(InvariantCheck("b", False, checked=2, failures=1, detail="boom"))
    again = AuditReport.from_json(rep.to_json())
    assert [c.to_dict() for c in again.checks] == [c.to_dict() for c in rep.checks]
    assert not again.passed


def test_report_wire_version_guard():
    with pytest.raises(ValueError, match="wire version"):
        AuditReport.from_json('{"version": 99, "checks": []}')


def test_report_merge_folds_by_name():
    a = AuditReport([InvariantCheck("x", True, checked=2)])
    b = AuditReport([
        InvariantCheck("x", False, checked=1, failures=1, detail="d"),
        InvariantCheck("y", True, checked=5),
    ])
    a.merge(b)
    x = a.get("x")
    assert (x.checked, x.failures, x.passed, x.detail) == (3, 1, False, "d")
    assert a.get("y").checked == 5
    assert not a.passed
    assert [c.name for c in a.failures()] == ["x"]


# -- clean runs pass ---------------------------------------------------------------

def test_clean_profiled_run_passes_audit():
    spec = _example_spec()
    out = profile_app(spec, runs=2, coz_config=_cfg(spec.scope), audit=True)
    assert out.audit is not None
    assert out.audit.passed
    names = {c.name for c in out.audit.checks}
    assert {
        "local-count-identity",
        "run-delay-reconciliation",
        "excess-algebra",
        "engine-delay-consistency",
        "effective-nonnegative",
        "wire-roundtrip",
    } <= names
    assert out.audit.get("local-count-identity").checked > 0


def test_audit_does_not_perturb_results():
    """The auditor is observational: profiles are bit-identical with it on."""
    spec = _example_spec()
    plain = profile_app(spec, runs=2, coz_config=_cfg(spec.scope))
    audited = profile_app(spec, runs=2, coz_config=_cfg(spec.scope), audit=True)
    assert plain.data == audited.data


def test_jittered_run_passes_audit():
    spec = _example_spec()
    cfg = _cfg(spec.scope, nanosleep_jitter_ns=5000)
    out = profile_app(spec, runs=2, coz_config=cfg, audit=True)
    assert out.audit.passed


# -- regression detection ----------------------------------------------------------

def _run_audited(profiler_cls, spec, cfg, seed=0):
    prof = profiler_cls(
        replace(cfg, seed=seed, audit=True),
        spec.progress_points,
        spec.latency_specs,
    )
    spec.build(seed).run(hook=prof)
    return prof


class _LeakyProfiler(CausalProfiler):
    """Replicates the old ``on_run_end``: a partial experiment's delays are
    discarded from the run total even though they are in the timeline."""

    def on_run_end(self, engine):
        if self.state == "running":
            self.delays.end()  # the bug: count never reaches _run_delay_ns
        self._run_delay_ns += self.delays.max_outstanding_excess_ns(engine.threads)
        self.data.add_run(RunInfo(
            runtime_ns=engine.now,
            total_delay_ns=self._run_delay_ns,
            line_samples=self.line_samples,
        ))
        if self.auditor is not None:
            self.auditor.on_profiler_run_end(self, engine)


class _RequiredOnlyProfiler(CausalProfiler):
    """Replicates the old jitter leak: nanosleep overshoot is inserted into
    the timeline but the run total only ever books count x delay."""

    def on_run_end(self, engine):
        if self.state == "running":
            count = self.delays.end()
            self._run_delay_ns += count * self._delay_ns
        # the bug: no max_outstanding_excess_ns term
        self.data.add_run(RunInfo(
            runtime_ns=engine.now,
            total_delay_ns=self._run_delay_ns,
            line_samples=self.line_samples,
        ))
        if self.auditor is not None:
            self.auditor.on_profiler_run_end(self, engine)


def test_audit_catches_dropped_partial_experiment_delays():
    spec = _example_spec()
    cfg = _cfg(spec.scope)
    leaky = _run_audited(_LeakyProfiler, spec, cfg)
    # the scenario is live: this run really does end mid-experiment
    assert leaky.state == "running"
    assert leaky.delays.global_count > 0
    rep = leaky.auditor.report()
    assert not rep.get("run-delay-reconciliation").passed
    # the shipped profiler passes on the identical scenario
    fixed = _run_audited(CausalProfiler, spec, cfg)
    assert fixed.state == "running"
    assert fixed.auditor.report().passed


def test_audit_catches_unbooked_nanosleep_excess():
    spec = _example_spec()
    cfg = _cfg(spec.scope, nanosleep_jitter_ns=5000)
    broken = _run_audited(_RequiredOnlyProfiler, spec, cfg)
    # the scenario is live: overshoot really is outstanding at run end
    assert broken.delays.max_outstanding_excess_ns(broken.engine.threads) > 0
    rep = broken.auditor.report()
    assert not rep.get("run-delay-reconciliation").passed
    fixed = _run_audited(CausalProfiler, spec, cfg)
    assert fixed.auditor.report().passed


def test_negative_effective_detected():
    data = ProfileData()
    data.add_run(RunInfo(runtime_ns=100, total_delay_ns=250))
    rep = audit_profile_data(data)
    assert not rep.passed
    assert not rep.get("effective-nonnegative").passed
    assert rep.get("wire-roundtrip").passed


# -- doctor & parallel -------------------------------------------------------------

def test_run_doctor_example_passes():
    rep = run_doctor("example", runs=2, jobs=2, experiment_ms=40.0)
    assert rep.passed
    names = {c.name for c in rep.checks}
    assert {
        "local-count-identity",
        "run-delay-reconciliation",
        "excess-algebra",
        "engine-delay-consistency",
        "effective-nonnegative",
        "wire-roundtrip",
        "parallel-serial-identity",
        "parallel-serial-full-identity",
    } <= names


def test_parallel_audit_matches_serial():
    """Bit-identity holds under --audit, and workers ship their reports."""
    spec = _example_spec()
    cfg = _cfg(spec.scope)
    serial = profile_app(spec, runs=3, coz_config=cfg, jobs=1, audit=True)
    fanned = profile_app(spec, runs=3, coz_config=cfg, jobs=3, audit=True)
    assert serial.data == fanned.data
    assert serial.audit.passed
    assert fanned.audit.passed
    identity = fanned.audit.get("parallel-serial-identity")
    assert identity is not None
    assert identity.checked > 0 and identity.failures == 0
    # worker-side audits crossed the process boundary (not just the spot check)
    assert fanned.audit.get("local-count-identity").checked == \
        serial.audit.get("local-count-identity").checked


# -- CLI ---------------------------------------------------------------------------

def test_cli_doctor_passes(capsys):
    from repro.cli import main

    assert main(["doctor", "example", "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Invariant audit: PASS" in out
    assert "parallel-serial-full-identity" in out


def test_cli_profile_audit_flag(capsys):
    from repro.cli import main

    assert main([
        "profile", "example", "--runs", "2", "--jobs", "1",
        "--experiment-ms", "40", "--speedup-step", "50", "--audit",
    ]) == 0
    out = capsys.readouterr().out
    assert "audit: PASS" in out
