"""Tables 1 & 2: delay handling around blocking and waking operations.

These tests run real programs under a CausalProfiler with a *forced*
experiment (fixed line, fixed speedup) and check the credit/charge rules:

* a thread executes pending delays before potentially blocking calls;
* a thread executes pending delays before potentially waking calls;
* a thread woken by a peer skips its accumulated delays (credited);
* a thread woken by a timer (sleep/IO) pays its accumulated delays.
"""

from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.core.progress import ProgressPoint
from repro.sim import (
    IO,
    MS,
    US,
    Join,
    Lock,
    Program,
    Progress,
    Scope,
    SimConfig,
    Spawn,
    Unlock,
    Work,
    line,
)
from repro.sim.sync import Mutex

HOT = line("hot.c:1")
OTHER = line("other.c:1")


def _profiler(pct=50, duration=MS(10)):
    cfg = CozConfig(
        scope=Scope.all_main(),
        fixed_line=HOT,
        speedup_schedule=[pct],
        experiment_duration_ns=duration,
        cooloff_ns=MS(1),
    )
    return CausalProfiler(cfg, [ProgressPoint("tick")])


def _config(seed=0):
    return SimConfig(seed=seed, cores=4, sample_period_ns=US(100), quantum_ns=US(500))


def test_delays_inserted_into_other_threads():
    """The basic experiment: a hot thread's samples pause the other thread."""

    def main(t):
        def hot_thread(t2):
            yield Work(HOT, MS(30))

        def other_thread(t2):
            for _ in range(300):
                yield Work(OTHER, US(100))
                yield Progress("tick")

        a = yield Spawn(hot_thread)
        b = yield Spawn(other_thread)
        yield Join(a)
        yield Join(b)

    prof = _profiler()
    r = Program(main, config=_config()).run(hook=prof)
    assert r.delay_ns > 0  # delays were inserted somewhere
    assert prof.data.experiments, "experiment should have completed"


def test_io_wake_pays_accumulated_delays():
    """Timed wakeups (IO) pay delays accumulated while suspended."""
    pauses = {}

    def main(t):
        def hot_thread(t2):
            yield Work(HOT, MS(30))

        def sleeper(t2):
            yield Work(OTHER, MS(2))  # get sampled/registered
            yield IO(MS(20))          # delays accumulate during this
            yield Work(OTHER, US(100))
            pauses["sleeper"] = t2.pause_ns

        a = yield Spawn(hot_thread)
        b = yield Spawn(sleeper)
        yield Join(a)
        yield Join(b)
        yield Progress("tick")

    prof = _profiler(pct=100)
    Program(main, config=_config()).run(hook=prof)
    assert pauses["sleeper"] > 0


def test_peer_wake_credits_delays():
    """A thread woken by another thread's unlock skips its delays."""
    pauses = {}

    def main(t):
        m = Mutex()

        def hot_holder(t2):
            yield Lock(m)
            yield Work(HOT, MS(20))  # hot line runs while blocked waiter waits
            yield Unlock(m)
            yield Work(HOT, MS(5))

        def waiter(t2):
            yield Work(OTHER, US(200))
            yield Lock(m)  # blocks for ~20ms while delays accumulate
            yield Unlock(m)
            pauses["at_wake"] = t2.pause_ns
            yield Work(OTHER, US(100))

        a = yield Spawn(hot_holder)
        yield Work(OTHER, US(50))
        b = yield Spawn(waiter)
        yield Join(a)
        yield Join(b)
        yield Progress("tick")

    prof = _profiler(pct=100)
    Program(main, config=_config()).run(hook=prof)
    # the waiter was woken by the hot thread: the ~20 hits that accumulated
    # while it was blocked are credited, so its pause time stays far below
    # the 20ms it would otherwise owe
    assert pauses["at_wake"] < MS(6)


def test_delays_execute_before_thread_exit():
    """pthread_exit is a waking call (Table 1): pending delays run first."""

    def main(t):
        done = {}

        def hot_thread(t2):
            yield Work(HOT, MS(30))

        def short_lived(t2):
            yield Work(OTHER, MS(3))
            done["pause"] = t2.pause_ns
            # exits here; any pending delays must be executed before its
            # joiner is woken

        a = yield Spawn(hot_thread)
        b = yield Spawn(short_lived)
        yield Join(b)
        jointime = t.cpu_ns  # placeholder; main mostly blocked
        yield Join(a)
        yield Progress("tick")
        main.pause_after_exit = b.pause_ns

    prof = _profiler(pct=100)
    Program(main, config=_config()).run(hook=prof)
    # total pause on the exiting thread includes the pre-exit settlement
    assert main.pause_after_exit >= 0  # smoke: path executed without error
