"""End-to-end latency profiling (§3.3): Little's law on a queueing server."""

import random

import pytest

from repro.core.config import CozConfig
from repro.core.profile_data import ProfileData, build_latency_profile
from repro.core.profiler import CausalProfiler
from repro.core.progress import LatencySpec, ProgressPoint
from repro.sim import IO, MS, US, Join, Program, Progress, Scope, SimConfig, Spawn, Work, line
from repro.sim.sync import Channel

PARSE = line("server.c:100")
SPEC = LatencySpec("request", begin="request-begin", end="request-end")


def make_program(seed=0, n_requests=6000, parse_us=14):
    def main(t):
        queue = Channel(64)

        def client(t2, cid):
            rng = random.Random(seed * 131 + cid)
            for _ in range(n_requests // 8):
                yield IO(US(rng.randrange(10, 60)))
                yield Progress("request-begin")
                yield from queue.put(cid)

        def worker(t2):
            while True:
                item = yield from queue.get()
                if item is Channel.CLOSED:
                    break
                yield Work(PARSE, US(parse_us))
                yield Progress("request-end")

        clients = []
        for cid in range(8):
            def cbody(t2, cid=cid):
                yield from client(t2, cid)
            clients.append((yield Spawn(cbody)))
        workers = []
        for i in range(4):
            workers.append((yield Spawn(worker)))
        for c in clients:
            yield Join(c)
        yield from queue.close()
        for w in workers:
            yield Join(w)

    return Program(main, config=SimConfig(seed=seed, cores=8, sample_period_ns=US(100)))


def collect(parse_us=14, runs=6):
    data = ProfileData()
    for seed in range(runs):
        prof = CausalProfiler(
            CozConfig(
                scope=Scope.all_main(),
                fixed_line=PARSE,
                speedup_schedule=[0, 50],
                experiment_duration_ns=MS(5),
                seed=seed,
            ),
            progress_points=[ProgressPoint("request-begin"), ProgressPoint("request-end")],
            latency_specs=[SPEC],
        )
        make_program(seed, parse_us=parse_us).run(hook=prof)
        data.merge(prof.data)
    return data


def test_latency_profile_shows_improvement():
    data = collect()
    points = build_latency_profile(data, PARSE, SPEC)
    assert points is not None
    by_pct = {p.speedup_pct: p for p in points}
    assert 0 in by_pct and 50 in by_pct
    assert by_pct[0].latency_reduction == pytest.approx(0.0)
    # speeding the service line cuts latency (service + queueing)
    assert by_pct[50].latency_reduction > 0.02
    assert by_pct[50].latency_ns < by_pct[0].latency_ns


def test_baseline_latency_scales_with_service_time():
    fast = build_latency_baseline(parse_us=6)
    slow = build_latency_baseline(parse_us=20)
    assert slow > fast


def build_latency_baseline(parse_us):
    data = collect(parse_us=parse_us, runs=3)
    points = build_latency_profile(data, PARSE, SPEC)
    return next(p.latency_ns for p in points if p.speedup_pct == 0)


def test_latency_profile_requires_baseline():
    data = collect(runs=2)
    # strip baseline experiments
    data.experiments = [e for e in data.experiments if e.speedup_pct != 0]
    assert build_latency_profile(data, PARSE, SPEC) is None
