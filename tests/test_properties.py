"""Property-based tests (hypothesis) for core data structures and invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.hashtable import HASH_VARIANTS, HashTable
from repro.core.speedup import DelayEngine
from repro.sim import MS, US, Join, Program, SimConfig, Sleep, Spawn, Work, line
from repro.sim.thread import VThread
from repro.stats.mannwhitney import mann_whitney_u
from repro.stats.regression import linear_regression

L = line("prop.c:1")


def _thread(name):
    def body(t):
        yield None

    return VThread(body, name=name)


# ------------------------------------------------------------ delay protocol

@given(
    events=st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from(["hit", "reconcile", "credit"]),
                  st.integers(1, 5)),
        max_size=60,
    ),
    delay=st.integers(0, 1000),
)
@settings(max_examples=200, deadline=None)
def test_delay_engine_invariant(events, delay):
    """§3.4.3 invariant: local counts never exceed the global count, and
    every local equals hits + pauses (+ credits)."""
    eng = DelayEngine()
    threads = [_thread(f"t{i}") for i in range(4)]
    eng.begin(delay_ns=delay, threads=threads)
    total_pause = 0
    for tid, kind, amount in events:
        t = threads[tid]
        if kind == "hit":
            total_pause += eng.on_hits(t, amount)
        elif kind == "reconcile":
            total_pause += eng.reconcile(t)
        else:
            eng.credit(t)
        # invariant: nobody is ever ahead of the global
        for th in threads:
            assert th.prof.get("coz_local", 0) <= eng.global_count
    if delay > 0:
        assert total_pause % delay == 0 or total_pause == 0
    assert eng.end() == eng.global_count


@given(hits=st.lists(st.integers(1, 10), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_single_executor_pays_nothing_other_pays_all(hits):
    """One thread runs the line: it never pauses; the other pays hit-for-hit."""
    eng = DelayEngine()
    a, b = _thread("a"), _thread("b")
    eng.begin(delay_ns=100, threads=[a, b])
    executor_pause = 0
    other_pause = 0
    for h in hits:
        executor_pause += eng.on_hits(a, h)
        other_pause += eng.reconcile(b)
    assert executor_pause == 0
    assert other_pause == sum(hits) * 100
    assert eng.global_count == sum(hits)


# ------------------------------------------------------------ hash table

keys_strategy = st.lists(st.binary(min_size=20, max_size=20), max_size=80)


@given(keys=keys_strategy, variant=st.sampled_from(sorted(HASH_VARIANTS)))
@settings(max_examples=100, deadline=None)
def test_hashtable_search_finds_every_inserted_key(keys, variant):
    t = HashTable(buckets=64, hash_fn=HASH_VARIANTS[variant])
    for k in keys:
        t.insert(k, k)
    assert t.size == len(set(keys))
    for k in keys:
        value, links = t.search(k)
        assert value == k
        assert links >= 1


@given(keys=keys_strategy)
@settings(max_examples=50, deadline=None)
def test_hashtable_histogram_consistency(keys):
    t = HashTable(buckets=32)
    for k in keys:
        t.insert(k)
    hist = t.chain_histogram()
    assert sum(n * c for n, c in hist.items()) == t.size
    assert 0.0 <= t.utilization() <= 1.0


# ------------------------------------------------------------ statistics

@given(
    x=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=30),
    y=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_mwu_pvalue_in_range_and_symmetric(x, y):
    less = mann_whitney_u(x, y, alternative="less").p_value
    greater = mann_whitney_u(x, y, alternative="greater").p_value
    assert 0.0 <= less <= 1.0
    assert 0.0 <= greater <= 1.0
    # swapping samples swaps the tails
    swapped = mann_whitney_u(y, x, alternative="greater").p_value
    assert abs(less - swapped) < 1e-9


@given(
    slope=st.floats(-5, 5, allow_nan=False),
    intercept=st.floats(-10, 10, allow_nan=False),
    n=st.integers(3, 20),
)
@settings(max_examples=100, deadline=None)
def test_regression_recovers_exact_lines(slope, intercept, n):
    xs = [float(i) for i in range(n)]
    ys = [slope * x + intercept for x in xs]
    r = linear_regression(xs, ys)
    assert abs(r.slope - slope) < 1e-6 * max(1, abs(slope))
    assert abs(r.intercept - intercept) < 1e-6 * max(1, abs(intercept))


# ------------------------------------------------------------ engine

@given(
    durations=st.lists(st.integers(US(10), MS(2)), min_size=1, max_size=6),
    cores=st.integers(1, 4),
    seed=st.integers(0, 5),
)
@settings(max_examples=40, deadline=None)
def test_engine_wall_time_bounds(durations, cores, seed):
    """Wall time is bounded by [max thread time, total cpu + overheads]."""

    def main(t):
        ws = []
        for i, d in enumerate(durations):
            def body(t2, d=d):
                yield Work(L, d)
            ws.append((yield Spawn(body, f"w{i}")))
        for w in ws:
            yield Join(w)

    cfg = SimConfig(cores=cores, seed=seed)
    r = Program(main, config=cfg).run()
    total = sum(durations)
    longest = max(durations)
    spawn_overhead = len(durations) * cfg.spawn_cost_ns
    assert r.runtime_ns >= longest
    assert r.runtime_ns >= (total // cores)
    assert r.runtime_ns <= total + spawn_overhead + MS(1)


@given(seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_engine_determinism_over_seeds(seed):
    def build():
        def main(t):
            def worker(t2):
                yield Work(L, US(500))
                yield Sleep(US(100))
                yield Work(L, US(300))

            a = yield Spawn(worker)
            b = yield Spawn(worker)
            yield Join(a)
            yield Join(b)

        return Program(main, config=SimConfig(cores=2, seed=seed))

    assert build().run().runtime_ns == build().run().runtime_ns
