"""Shared fixtures and small program builders for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import MS, US, Program, SimConfig, Work, line

L1 = line("app.c:10")
L2 = line("app.c:20")
L3 = line("lib.c:5")


def single_thread_program(work_ns: int = MS(5), src=L1, config: SimConfig = None) -> Program:
    """One thread, one Work op."""

    def main(t):
        yield Work(src, work_ns)

    return Program(main, name="single", config=config or SimConfig())


@pytest.fixture
def fast_config() -> SimConfig:
    """A small-machine config used across engine tests."""
    return SimConfig(cores=2, quantum_ns=MS(1), sample_period_ns=US(100))
