"""Chaos matrix: every injected fault class either retries cleanly or
becomes a recorded failure — never a hang, never a silent drop — and a
SIGKILL'd journaled session resumes bit-identically."""

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from dataclasses import replace

import pytest

from repro.apps import registry
from repro.apps.example import build_example
from repro.harness import ProfileRequest, run_profile_session
from repro.harness.parallel import ParallelExecutionWarning
from repro.sim.faults import FaultPlan


def _spec():
    # long enough (~200 ms virtual) to cover the default fault window
    return build_example(rounds=30)


def _session(plan, runs=3, **kw):
    return run_profile_session(
        _spec(), ProfileRequest(runs=runs, faults=plan, **kw)
    )


def _accounted(outcome, runs):
    """No silent drops: every scheduled run is a result or a failure."""
    assert len(outcome.run_results) + len(outcome.data.failures) == runs


# -- deterministic sim faults become recorded failures -------------------------------


def test_thread_crash_degrades_with_recorded_failures():
    runs = 3
    outcome = _session(FaultPlan(seed=1, thread_crash=1.0), runs=runs)
    assert outcome.degraded
    assert {f.error_type for f in outcome.data.failures} == {"ThreadCrashFault"}
    assert all(f.virtual_ns > 0 for f in outcome.data.failures)
    _accounted(outcome, runs)


def test_stuck_lock_degrades_with_recorded_failures():
    runs = 2
    outcome = _session(FaultPlan(seed=1, stuck_lock=1.0), runs=runs)
    assert outcome.degraded
    assert {f.error_type for f in outcome.data.failures} == {"StuckLockError"}
    _accounted(outcome, runs)


def test_failures_reproduce_on_reexecution():
    first = _session(FaultPlan(seed=1, thread_crash=1.0), runs=2)
    again = _session(FaultPlan(seed=1, thread_crash=1.0), runs=2)
    assert [f.to_dict() for f in first.data.failures] == [
        f.to_dict() for f in again.data.failures
    ]


# -- non-fatal faults never lose runs ------------------------------------------------


def test_nonfatal_faults_complete_undegraded():
    runs = 2
    plan = FaultPlan(seed=1, sample_loss=0.5, sample_dup=0.5, jitter_spike=0.5)
    outcome = _session(plan, runs=runs)
    assert not outcome.degraded
    assert len(outcome.run_results) == runs
    _accounted(outcome, runs)


# -- parallel chaos equals serial chaos ----------------------------------------------


def test_chaos_parallel_matches_serial():
    # the registry-backed app: picklable tasks, so jobs=2 really forks
    spec = registry.build("example")
    plan = replace(
        FaultPlan.chaos(seed=3, intensity=0.5), worker_kill=0.0, worker_hang=0.0
    )
    serial = run_profile_session(spec, ProfileRequest(runs=6, jobs=1, faults=plan))
    parallel = run_profile_session(spec, ProfileRequest(runs=6, jobs=2, faults=plan))
    assert parallel.data == serial.data
    assert parallel.data.to_json() == serial.data.to_json()
    _accounted(parallel, 6)


# -- worker-level faults retry cleanly -----------------------------------------------


def test_worker_kill_is_retried_to_a_clean_session():
    spec = registry.build("example")
    clean = run_profile_session(spec, ProfileRequest(runs=2, jobs=1))
    with pytest.warns(ParallelExecutionWarning, match="retrying in parent|worker"):
        chaotic = run_profile_session(
            spec,
            ProfileRequest(runs=2, jobs=2, faults=FaultPlan(seed=1, worker_kill=1.0)),
        )
    assert not chaotic.degraded
    assert chaotic.data == clean.data
    _accounted(chaotic, 2)


def test_worker_hang_recovers_within_deadline():
    spec = registry.build("example")
    clean = run_profile_session(spec, ProfileRequest(runs=2, jobs=1))
    plan = FaultPlan(seed=1, worker_hang=1.0, worker_hang_s=30.0)
    start = time.monotonic()
    with pytest.warns(ParallelExecutionWarning):
        chaotic = run_profile_session(
            spec, ProfileRequest(runs=2, jobs=2, faults=plan, timeout=1.0)
        )
    elapsed = time.monotonic() - start
    assert elapsed < 20.0  # bounded by the deadline, not the 30 s hang
    assert not chaotic.degraded
    assert chaotic.data == clean.data
    _accounted(chaotic, 2)


# -- SIGKILL-and-resume bit-identity -------------------------------------------------

_CHILD = """
import sys
from repro.apps import registry
from repro.harness import ProfileRequest, run_profile_session

run_profile_session(
    registry.build("example"),
    ProfileRequest(runs=int(sys.argv[2]), journal=sys.argv[1]),
)
"""


def test_sigkilled_session_resumes_bit_identically(tmp_path):
    runs = 8
    path = str(tmp_path / "session.jsonl")
    spec = registry.build("example")
    uninterrupted = run_profile_session(spec, ProfileRequest(runs=runs))

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD, path, str(runs)],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    try:
        # wait for at least one durable run record, then SIGKILL mid-session
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if os.path.exists(path):
                with open(path) as fh:
                    if sum(1 for _ in fh) >= 2:  # header + >=1 run
                        break
            time.sleep(0.01)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    with open(path) as fh:
        journaled = sum(1 for line in fh if '"kind":"run"' in line)
    assert journaled >= 1

    with warnings.catch_warnings():
        # a torn final record is expected after a SIGKILL mid-append
        warnings.simplefilter("ignore", UserWarning)
        resumed = run_profile_session(spec, ProfileRequest(runs=runs, resume=path))

    assert resumed.data == uninterrupted.data
    assert resumed.data.to_json() == uninterrupted.data.to_json()
    # resuming replayed the journaled runs instead of re-running everything
    assert json.loads(open(path).readline())["kind"] == "header"
