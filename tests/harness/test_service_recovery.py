"""Daemon crash recovery: SIGKILL mid-job, restart, bit-identical result.

The strongest robustness claim the service makes: a daemon killed with
SIGKILL partway through a session recovers it on restart — the queue
journal re-enqueues the job, the session journal replays the completed
runs, and the finished result is byte-for-byte identical to a result
produced by an uninterrupted daemon.

These tests run real daemon subprocesses via ``python -m repro.cli serve``
so the kill is a genuine process kill, not a simulated one.
"""

import json
import os
import signal
import socket as socket_mod
import subprocess
import sys
import time

import pytest

from repro.harness.service import (
    JobSpec,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    TenantPolicy,
    job_fingerprint,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"),
    reason="no AF_UNIX sockets on this platform",
)

#: long enough that the daemon cannot finish before the kill lands
SPEC = dict(tenant="crash", app="example", runs=10, experiment_ms=25.0)


def _spawn_daemon(state_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", state_dir, "--workers", "1"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_file_lines(path: str, min_lines: int, timeout_s: float) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                if sum(1 for _ in fh) >= min_lines:
                    return True
        except OSError:
            pass
        time.sleep(0.01)
    return False


def _canonical(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _control_result(tmp_path, spec: JobSpec) -> dict:
    """The same job, run by an uninterrupted in-process daemon."""
    from repro.harness.checkpoint import clear_memory_cache

    clear_memory_cache()
    daemon = ServiceDaemon(ServiceConfig(
        state_dir=str(tmp_path / "control-state"),
        workers=1,
        policy=TenantPolicy(rate_per_s=1000.0, burst=1000),
    ))
    daemon.start()
    try:
        client = ServiceClient(daemon.config.sock)
        assert client.wait_until_ready(10.0)
        response = client.submit(spec, wait_s=300.0)
        assert response.get("ok") and response.get("result"), response
        return response["result"]
    finally:
        daemon.stop()


def test_sigkill_mid_job_restart_recovers_bit_identically(tmp_path):
    state_dir = str(tmp_path / "state")
    spec = JobSpec(**SPEC)
    fp = job_fingerprint(spec)
    job_journal = os.path.join(state_dir, "jobs", f"{fp}.jsonl")

    proc = _spawn_daemon(state_dir)
    try:
        client = ServiceClient(os.path.join(state_dir, "daemon.sock"))
        assert client.wait_until_ready(30.0), "daemon never came up"
        submitted = client.submit(spec)
        assert submitted["ok"], submitted

        # wait for the header + at least one fsync'd run record, then
        # SIGKILL the daemon mid-session: no cleanup, no atexit, nothing
        assert _wait_for_file_lines(job_journal, 2, timeout_s=60.0), \
            "session journal never recorded a run"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)

    # the queue journal has the submit but no terminal record
    with open(os.path.join(state_dir, "queue.jsonl"), "r") as fh:
        kinds = [json.loads(line)["kind"] for line in fh if line.strip()]
    assert "submit" in kinds and "terminal" not in kinds

    # restart over the same state dir: the job must recover and finish
    proc = _spawn_daemon(state_dir)
    try:
        client = ServiceClient(os.path.join(state_dir, "daemon.sock"))
        assert client.wait_until_ready(30.0), "restarted daemon never came up"
        status = client.status()["status"]
        assert status["jobs"]["recovered"] == 1

        recovered = None
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            response = client.result(fp)
            if response.get("ok"):
                recovered = response["result"]
                break
            time.sleep(0.2)
        assert recovered is not None, "recovered job never produced a result"
        assert not recovered["degraded"]
    finally:
        try:
            ServiceClient(os.path.join(state_dir, "daemon.sock")).shutdown()
        except Exception:
            pass
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30.0)

    # the journal-replayed result is byte-identical to an uninterrupted run
    control = _control_result(tmp_path, spec)
    assert _canonical(recovered) == _canonical(control)


def test_restart_with_clean_journal_recovers_nothing(tmp_path):
    daemon = ServiceDaemon(ServiceConfig(
        state_dir=str(tmp_path / "state"),
        workers=1,
        policy=TenantPolicy(rate_per_s=1000.0, burst=1000),
    ))
    daemon.start()
    try:
        client = ServiceClient(daemon.config.sock)
        assert client.wait_until_ready(10.0)
        r = client.submit(
            JobSpec(tenant="t", app="example", runs=2, experiment_ms=10.0),
            wait_s=120.0,
        )
        assert r["ok"] and r["result"]["state"] == "done"
    finally:
        daemon.stop()
    # every journaled submit reached a terminal record, so a second daemon
    # over the same state dir re-enqueues nothing (and serves the cache)
    second = ServiceDaemon(ServiceConfig(
        state_dir=str(tmp_path / "state"),
        workers=1,
        policy=TenantPolicy(rate_per_s=1000.0, burst=1000),
    ))
    second.start()
    try:
        client = ServiceClient(second.config.sock)
        assert client.wait_until_ready(10.0)
        status = client.status()["status"]
        assert status["jobs"]["recovered"] == 0
        again = client.submit(
            JobSpec(tenant="t", app="example", runs=2, experiment_ms=10.0)
        )
        assert again["cached"]
    finally:
        second.stop()
