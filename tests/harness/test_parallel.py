"""Process-parallel executor: determinism, robustness, fallback semantics.

Failure-injection builders use ``multiprocessing.parent_process()`` to
detect whether they are running inside a pool worker (non-None) or in the
main process (None): a run can then fail *only* worker-side, so the
executor's retry-in-parent path is observable and the session completes.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.apps import registry
from repro.apps.example import build_example
from repro.core.config import CozConfig
from repro.harness import parallel
from repro.harness.comparison import compare_app, measure_runtimes
from repro.harness.overhead import measure_overhead
from repro.harness.parallel import (
    AUTO_JOBS,
    ParallelExecutionWarning,
    resolve_jobs,
)
from repro.harness.runner import ProfileRequest, profile_app, run_profile_session
from repro.sim.clock import MS


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _build_crashy(**kwargs):
    if _in_worker():
        raise RuntimeError("injected worker failure")
    return build_example(rounds=3)


def _build_killer(**kwargs):
    if _in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return build_example(rounds=3)


def _build_sleepy(**kwargs):
    if _in_worker():
        time.sleep(3)
    return build_example(rounds=3)


def _build_hang(**kwargs):
    # long enough that an orphaned worker is observable after the session
    # returns; the fix terminates the process instead of waiting it out
    if _in_worker():
        time.sleep(30)
    return build_example(rounds=3)


@pytest.fixture
def injected_app():
    """Register a failure-injection builder; yields a registry.build helper."""
    registered = []

    def make(name, builder):
        registry.register(name, builder, replace=True)
        registered.append(name)
        return registry.build(name)

    yield make
    for name in registered:
        registry.unregister(name)


def _small_cfg(scope):
    return CozConfig(scope=scope, experiment_duration_ns=MS(40))


# -- determinism -------------------------------------------------------------------

def test_resolve_jobs():
    assert resolve_jobs(1, 8) == 1
    assert resolve_jobs(16, 4) == 4          # clamped to task count
    auto = resolve_jobs(AUTO_JOBS, 8)
    assert auto == min(8, os.cpu_count() or 1)
    assert resolve_jobs(None, 8) == auto
    with pytest.raises(ValueError):
        resolve_jobs(-1, 4)


@pytest.mark.parametrize("app,kwargs,cfg_kwargs", [
    ("example", {"rounds": 30}, {"experiment_duration_ns": MS(40)}),
    ("ferret", {"n_queries": 120}, {
        "experiment_duration_ns": MS(20),
        "speedup_values": (0, 25, 50),
        "zero_speedup_prob": 0.4,
    }),
])
def test_parallel_profile_identical_to_serial(app, kwargs, cfg_kwargs):
    """jobs=4 merges the same ProfileData and ranked profile as jobs=1."""
    spec = registry.build(app, **kwargs)
    cfg = CozConfig(scope=spec.scope, **cfg_kwargs)
    serial = profile_app(spec, runs=4, coz_config=cfg, jobs=1)
    fanned = profile_app(spec, runs=4, coz_config=cfg, jobs=4)

    assert serial.data == fanned.data
    assert serial.experiment_count == fanned.experiment_count
    assert len(fanned.run_results) == 4
    assert [r.runtime_ns for r in serial.run_results] == \
        [r.runtime_ns for r in fanned.run_results]

    s_ranked = [(lp.line, lp.slope, [p.program_speedup for p in lp.points])
                for lp in serial.profile.ranked()]
    f_ranked = [(lp.line, lp.slope, [p.program_speedup for p in lp.points])
                for lp in fanned.profile.ranked()]
    assert s_ranked == f_ranked


def test_run_profile_session_with_request():
    spec = registry.build("example", rounds=20)
    request = ProfileRequest(runs=2, coz_config=_small_cfg(spec.scope), jobs=2)
    out = run_profile_session(spec, request)
    assert len(out.data.runs) == 2
    assert out.experiment_count > 0


def test_measure_runtimes_parallel_matches_serial():
    spec = registry.build("example", rounds=20)
    serial = measure_runtimes(spec.build, runs=3, app_ref=spec.registry_ref, jobs=1)
    fanned = measure_runtimes(spec.build, runs=3, app_ref=spec.registry_ref, jobs=3)
    assert serial == fanned


def test_compare_app_parallel_matches_serial():
    serial = compare_app("swaptions", runs=2, jobs=1, n_iters=40)
    fanned = compare_app("swaptions", runs=2, jobs=2, n_iters=40)
    assert serial.baseline_ns == fanned.baseline_ns
    assert serial.optimized_ns == fanned.optimized_ns
    assert serial.speedup_pct == fanned.speedup_pct


def test_measure_overhead_parallel_matches_serial():
    spec = registry.build("swaptions", n_iters=40)
    serial = measure_overhead(spec, runs=2, jobs=1)
    fanned = measure_overhead(spec, runs=2, jobs=2)
    assert serial == fanned


# -- robustness --------------------------------------------------------------------

def test_raising_worker_is_retried_and_session_completes(injected_app):
    spec = injected_app("_test_crashy", _build_crashy)
    with pytest.warns(ParallelExecutionWarning, match="retrying in parent"):
        out = profile_app(spec, runs=2, coz_config=_small_cfg(spec.scope), jobs=2)
    assert len(out.data.runs) == 2


def test_killed_worker_is_retried_and_session_completes(injected_app):
    spec = injected_app("_test_killer", _build_killer)
    with pytest.warns(ParallelExecutionWarning, match="retrying in parent"):
        out = profile_app(spec, runs=2, coz_config=_small_cfg(spec.scope), jobs=2)
    assert len(out.data.runs) == 2


def test_timed_out_worker_is_retried_and_session_completes(injected_app):
    spec = injected_app("_test_sleepy", _build_sleepy)
    with pytest.warns(ParallelExecutionWarning, match="retrying in parent"):
        out = profile_app(
            spec, runs=2, coz_config=_small_cfg(spec.scope), jobs=2, timeout=0.25,
        )
    assert len(out.data.runs) == 2


def test_hung_workers_are_terminated_on_timeout(injected_app):
    """A timed-out run must not orphan its worker: ``Future.cancel()`` is a
    no-op on a running task and ``shutdown(wait=False)`` leaves the process
    grinding, so the executor has to terminate the pool outright.  The
    session still completes (every run retried in the parent) and no pool
    process survives it."""
    spec = injected_app("_test_hang", _build_hang)
    start = time.monotonic()
    with pytest.warns(ParallelExecutionWarning, match="retrying in parent"):
        out = profile_app(
            spec, runs=4, coz_config=_small_cfg(spec.scope), jobs=2, timeout=1.0,
        )
    assert len(out.data.runs) == 4
    # queued tasks must not each burn a full timeout behind hung workers
    assert time.monotonic() - start < 25.0
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and multiprocessing.active_children():
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def test_pool_start_failure_degrades_to_serial(monkeypatch):
    class NoPool:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this environment")

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", NoPool)
    spec = registry.build("example", rounds=20)
    cfg = _small_cfg(spec.scope)
    with pytest.warns(ParallelExecutionWarning, match="running serially"):
        fanned = profile_app(spec, runs=2, coz_config=cfg, jobs=2)
    serial = profile_app(spec, runs=2, coz_config=cfg, jobs=1)
    assert fanned.data == serial.data


def test_unpicklable_factory_degrades_to_serial():
    # built directly (not via the registry): the build closure cannot cross
    # process boundaries, so the session must warn and run serially
    spec = build_example(rounds=20)
    assert spec.registry_ref is None
    cfg = _small_cfg(spec.scope)
    with pytest.warns(ParallelExecutionWarning, match="not picklable"):
        fanned = profile_app(spec, runs=2, coz_config=cfg, jobs=2)
    serial = profile_app(spec, runs=2, coz_config=cfg, jobs=1)
    assert fanned.data == serial.data


# -- CLI ---------------------------------------------------------------------------

def test_cli_profile_and_compare_with_jobs(capsys):
    from repro.cli import main

    assert main([
        "profile", "example", "--runs", "2", "--jobs", "2",
        "--experiment-ms", "60", "--speedup-step", "50",
    ]) == 0
    out = capsys.readouterr().out
    assert "Causal profile" in out
    assert "example.cpp" in out

    assert main(["compare", "swaptions", "--runs", "2", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "swaptions" in out and "%" in out
