"""Differential profiler report: schema, agreement, determinism."""

import json

import pytest

from repro.harness.differential import (
    DiffConfig,
    diff_to_json,
    render_app_diff,
    render_diff,
    run_differential,
)

QUICK = DiffConfig(runs=2, quick=True)


@pytest.fixture(scope="module")
def example_diff():
    return run_differential("example", QUICK)


def test_rankings_cover_both_spaces(example_diff):
    spaces = {(r.profiler, r.space) for r in example_diff.rankings}
    assert ("causal", "line") in spaces
    assert ("perf", "line") in spaces
    assert ("gapp", "line") in spaces
    assert ("gprof", "func") in spaces
    assert ("causal", "func") in spaces
    # gprof only knows functions
    assert ("gprof", "line") not in spaces


def test_example_rankings_match_figure_2a(example_diff):
    causal = example_diff.ranking("causal", "line")
    perf = example_diff.ranking("perf", "line")
    # both profilers see a's line first on example — but for different
    # reasons: perf because it has the most samples, causal because its
    # focused profile has the steepest slope
    assert causal.entries[0].key == "example.cpp:2"
    assert perf.entries[0].key == "example.cpp:2"
    assert perf.score_of("example.cpp:2") == pytest.approx(51.1, abs=1.5)
    agreement = example_diff.agreement("causal", "perf", "line")
    assert agreement is not None
    assert agreement.overlap >= 2


def test_ranks_are_dense_and_one_based(example_diff):
    for r in example_diff.rankings:
        assert [e.rank for e in r.entries] == list(
            range(1, len(r.entries) + 1)
        )


def test_report_is_deterministic_and_parallel_identical():
    serial = run_differential("example", QUICK)
    again = run_differential("example", QUICK)
    parallel = run_differential("example", DiffConfig(runs=2, quick=True, jobs=2))
    text = render_app_diff(serial)
    assert text == render_app_diff(again)
    assert text == render_app_diff(parallel)
    assert diff_to_json([serial]) == diff_to_json([parallel])


def test_report_identical_across_chunking_modes():
    coalesced = run_differential(
        "example", DiffConfig(runs=2, quick=True, coalesce=True)
    )
    legacy = run_differential(
        "example", DiffConfig(runs=2, quick=True, coalesce=False)
    )
    assert render_app_diff(coalesced) == render_app_diff(legacy)
    assert diff_to_json([coalesced]) == diff_to_json([legacy])


def test_json_document_shape(example_diff):
    doc = json.loads(diff_to_json([example_diff]))
    assert doc["version"] == 1
    (app,) = doc["apps"]
    assert app["app"] == "example"
    assert app["experiments"] > 0
    assert app["runtime_ns"] > 0
    for ranking in app["rankings"]:
        assert ranking["profiler"] in ("causal", "gprof", "perf", "gapp")
        for e in ranking["entries"]:
            assert set(e) == {"key", "rank", "score"}
    for g in app["agreements"]:
        assert set(g) >= {"a", "b", "space", "spearman", "kendall", "overlap"}
    # canonical: no timestamps anywhere
    assert "generated" not in json.dumps(doc)


def test_render_multiple_apps(example_diff):
    out = render_diff([example_diff, example_diff])
    assert out.count("== differential profile: example") == 2
    assert "rank agreement" in out
