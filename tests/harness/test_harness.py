"""Harness: runner, comparison, overhead, prediction, tables, CLI."""

import pytest

from repro.apps.example import LINE_A, build_example, optimal_speedup_fraction
from repro.apps.swaptions import LINE_ZERO, build_swaptions
from repro.core.config import CozConfig
from repro.harness.comparison import compare_builds, measure_runtimes
from repro.harness.overhead import measure_overhead
from repro.harness.prediction import accuracy_study
from repro.harness.runner import profile_app
from repro.harness.tables import render_figure9, render_table3
from repro.sim.clock import MS


def test_measure_runtimes_independent_seeds():
    spec = build_example(rounds=5)
    times = measure_runtimes(spec.build, runs=3)
    assert len(times) == 3
    assert all(t > 0 for t in times)


def test_measure_runtimes_missing_output_degrades_with_warning(monkeypatch):
    """An executor output lost after retry exhaustion degrades, not KeyError."""
    from repro.harness import comparison
    from repro.harness.parallel import ParallelExecutionWarning

    spec = build_example(rounds=5)
    real = comparison.execute_tasks

    def lossy(tasks, **kw):
        return [o for o in real(tasks, **kw) if o.index != 2]

    monkeypatch.setattr(comparison, "execute_tasks", lossy)
    with pytest.warns(ParallelExecutionWarning, match="run 2 produced no output"):
        times = measure_runtimes(spec.build, runs=4)
    assert len(times) == 3


def test_measure_runtimes_short_journal_resumed_with_more_runs(
    monkeypatch, tmp_path
):
    """A journal recorded for fewer runs + a dead executor degrades cleanly."""
    from repro.harness import comparison
    from repro.harness.journal import SessionJournal
    from repro.harness.parallel import ParallelExecutionWarning

    spec = build_example(rounds=5)
    path = str(tmp_path / "runs.jsonl")
    fingerprint = {"kind": "test-runtimes", "app": "example"}

    jr = SessionJournal.create(path, fingerprint)
    try:
        assert len(measure_runtimes(spec.build, runs=2, journal=jr)) == 2
    finally:
        jr.close()

    # resume against a larger run count while the executor produces nothing
    # (as after retry exhaustion): the journal covers runs 0-1 only
    monkeypatch.setattr(comparison, "execute_tasks", lambda tasks, **kw: [])
    jr = SessionJournal.resume(path, fingerprint)
    try:
        with pytest.warns(ParallelExecutionWarning, match="2 of 4 runs failed"):
            times = measure_runtimes(spec.build, runs=4, journal=jr)
    finally:
        jr.close()
    assert len(times) == 2


def test_compare_builds_detects_real_speedup():
    base = build_example(rounds=8)
    opt = build_example(rounds=8, line_speedups={LINE_A: 0.0})
    cmp_result = compare_builds("example", base.build, opt.build, runs=4)
    assert cmp_result.speedup_pct == pytest.approx(
        100 * optimal_speedup_fraction(), abs=1.0
    )
    assert "example" in cmp_result.row()


def test_profile_app_merges_runs():
    spec = build_example(rounds=40)
    cfg = CozConfig(scope=spec.scope, experiment_duration_ns=MS(40))
    out = profile_app(spec, runs=3, coz_config=cfg)
    assert len(out.data.runs) == 3
    assert out.experiment_count > 3
    assert len(out.run_results) == 3


def test_overhead_breakdown_components_nonnegative():
    spec = build_swaptions(n_iters=60)
    b = measure_overhead(spec, runs=1)
    assert b.baseline_ns > 0
    assert b.startup_pct >= 0
    assert b.total_pct >= b.startup_pct
    assert "swaptions" in b.row()


def test_accuracy_study_on_swaptions_zero_loop():
    """Focused §4.3-style check: prediction ~ realized for a simple line."""
    spec = build_swaptions(False, n_iters=250)
    optimized = build_swaptions(False, n_iters=250, line_speedups={LINE_ZERO: 0.1})
    cfg = CozConfig(
        experiment_duration_ns=MS(25),
        speedup_schedule=[0, 90],
    )
    res = accuracy_study(
        spec, optimized, LINE_ZERO, line_speedup_pct=90,
        coz_config=cfg, profile_runs=4, timing_runs=2,
    )
    assert res.realized == pytest.approx(0.089, abs=0.01)  # 162/1840
    assert res.predicted == pytest.approx(res.realized, abs=0.04)
    assert res.error_pp < 4.0
    assert "swaptions" in res.row()


def test_render_tables_smoke():
    base = build_example(rounds=5)
    opt = build_example(rounds=5, line_speedups={LINE_A: 0.5})
    cmp_result = compare_builds("example", base.build, opt.build, runs=2)
    out = render_table3([cmp_result])
    assert "example" in out and "Speedup" in out

    b = measure_overhead(build_swaptions(n_iters=40), runs=1)
    fig9 = render_figure9([b])
    assert "MEAN" in fig9


def test_cli_list_and_profile(capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "dedup" in out and "example" in out

    assert main([
        "profile", "example", "--runs", "2", "--experiment-ms", "60",
        "--speedup-step", "50", "--graphs", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "Causal profile" in out
    assert "example.cpp" in out


def test_cli_compare(capsys):
    from repro.cli import main

    assert main(["compare", "swaptions", "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "swaptions" in out and "%" in out


def test_cli_rejects_unknown_app():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["profile", "nosuchapp"])


def test_cli_overhead_and_coz_output(capsys, tmp_path):
    from repro.cli import main

    assert main(["overhead", "blackscholes", "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "startup=" in out and "delays=" in out

    target = str(tmp_path / "profile.coz")
    assert main([
        "profile", "example", "--runs", "1", "--experiment-ms", "60",
        "--speedup-step", "50", "--coz-output", target,
    ]) == 0
    capsys.readouterr()
    with open(target) as f:
        content = f.read()
    assert content.startswith("startup\ttime=")
    assert "experiment\tselected=" in content
