"""Grouped ProfileRequest sub-configs and their legacy flat-kwarg shims."""

import warnings

import pytest

from repro.apps import registry
from repro.core.config import CozConfig
from repro.harness import (
    ExecutionConfig,
    ProfileRequest,
    ResilienceConfig,
    session_fingerprint,
)
from repro.plan import PlanConfig
from repro.sim.faults import FaultPlan


def _fingerprint(request):
    spec = registry.build("example")
    return session_fingerprint(
        spec, request, request.coz_config or CozConfig(scope=spec.scope)
    )


def test_grouped_construction_is_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        request = ProfileRequest(
            runs=4,
            execution=ExecutionConfig(jobs=2, timeout=9.0),
            resilience=ResilienceConfig(stop_after_runs=1),
            plan=PlanConfig(planner="adaptive", budget=3),
        )
    assert request.jobs == 2
    assert request.timeout == 9.0
    assert request.stop_after_runs == 1
    assert request.planner == "adaptive"
    assert request.budget == 3


def test_flat_kwargs_warn_and_fold_into_groups():
    plan = FaultPlan(seed=1)
    with pytest.warns(DeprecationWarning, match="flat ProfileRequest kwargs"):
        legacy = ProfileRequest(runs=4, jobs=2, timeout=9.0, faults=plan)
    grouped = ProfileRequest(
        runs=4,
        execution=ExecutionConfig(jobs=2, timeout=9.0),
        resilience=ResilienceConfig(faults=plan),
    )
    assert legacy == grouped
    assert legacy.execution == grouped.execution
    assert legacy.resilience == grouped.resilience


def test_flat_kwarg_conflicts_with_its_group():
    with pytest.raises(ValueError, match="jobs= conflicts with execution="):
        ProfileRequest(jobs=2, execution=ExecutionConfig(jobs=4))


def test_unknown_kwargs_still_raise():
    with pytest.raises(TypeError, match="unexpected keyword"):
        ProfileRequest(workers=3)


def test_fingerprint_ignores_execution_but_not_plan():
    base = _fingerprint(ProfileRequest(runs=3))
    assert _fingerprint(
        ProfileRequest(runs=3, execution=ExecutionConfig(jobs=8, checkpoint=False))
    ) == base
    assert _fingerprint(
        ProfileRequest(runs=3, plan=PlanConfig(planner="adaptive"))
    ) != base
    assert _fingerprint(
        ProfileRequest(runs=3, plan=PlanConfig(budget=2))
    ) != base
