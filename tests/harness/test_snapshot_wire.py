"""Snapshot shipping across the pool boundary.

Covers the :class:`~repro.sim.snapshot.EngineSnapshot` byte container and
the two submit-side wrappers the batched executor ships instead of live
snapshots: :class:`~repro.harness.checkpoint.SnapshotRef` (zero-payload
marker resolved against the fork-inherited in-memory cache) and
:class:`~repro.harness.checkpoint.SnapshotWire` (pre-encoded bytes decoded
once per worker).
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import pytest

from repro.apps import registry
from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.harness.checkpoint import (
    CheckpointStore,
    SnapshotRef,
    SnapshotWire,
    clear_memory_cache,
    resolve_shipped,
    snapshot_in_memory,
)
from repro.sim.snapshot import (
    SNAPSHOT_VERSION,
    EngineSnapshot,
    Recorder,
    SnapshotError,
)


def _snapshot(seed=0):
    """One real mid-run snapshot from a short example run."""
    spec = registry.build("example", rounds=10)
    cfg = replace(CozConfig(scope=spec.scope), seed=seed)
    prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
    program = spec.build(seed)
    probe = program.run(hook=prof)
    grid = [int(probe.runtime_ns * 0.5)]
    prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
    recorder = Recorder(grid=grid, keep_all=True)
    spec.build(seed).run(hook=prof, recorder=recorder)
    assert recorder.snapshots
    return spec, recorder.snapshots[-1]


def _resume_fingerprint(spec, snap, seed=0):
    cfg = replace(CozConfig(scope=spec.scope), seed=seed)
    prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
    result = spec.build(seed).resume(snap, hook=prof)
    return (result.runtime_ns, result.events_processed, prof.data.to_json())


# -- byte container ----------------------------------------------------------------

def test_snapshot_bytes_round_trip_resumes_identically():
    spec, snap = _snapshot()
    blob = snap.to_bytes()
    assert blob[:4] == EngineSnapshot.WIRE_MAGIC
    back = EngineSnapshot.from_bytes(blob)
    assert back.version == snap.version == SNAPSHOT_VERSION
    assert _resume_fingerprint(spec, back) == _resume_fingerprint(spec, snap)


def test_snapshot_bytes_rejects_bad_magic_and_versions():
    _, snap = _snapshot()
    blob = bytearray(snap.to_bytes())
    with pytest.raises(SnapshotError):
        EngineSnapshot.from_bytes(b"XXXX" + bytes(blob[4:]))
    future = bytearray(blob)
    future[4] = 99  # container version
    with pytest.raises(SnapshotError):
        EngineSnapshot.from_bytes(bytes(future))
    layout = bytearray(blob)
    layout[5:9] = (SNAPSHOT_VERSION + 1).to_bytes(4, "little")
    with pytest.raises(SnapshotError):
        EngineSnapshot.from_bytes(bytes(layout))
    with pytest.raises(SnapshotError):
        EngineSnapshot.from_bytes(b"RS")  # truncated


# -- submit-side wrappers ----------------------------------------------------------

def test_snapshot_wire_resolves_and_caches():
    clear_memory_cache()
    spec, snap = _snapshot()
    wire = SnapshotWire.from_snapshot(snap, key="k1", seed=0)
    assert not snapshot_in_memory("k1", 0)
    resolved = wire.resolve()
    assert isinstance(resolved, EngineSnapshot)
    assert _resume_fingerprint(spec, resolved) == _resume_fingerprint(spec, snap)
    # decoding memoizes: the same worker never decodes the blob twice
    assert snapshot_in_memory("k1", 0)
    assert wire.resolve() is resolved


def test_snapshot_ref_resolves_from_memory_or_returns_none():
    clear_memory_cache()
    spec, snap = _snapshot()
    ref = SnapshotRef("k2", 0)
    assert ref.resolve() is None  # nothing cached: caller runs cold
    SnapshotWire.from_snapshot(snap, key="k2", seed=0).resolve()
    assert ref.resolve() is not None


def test_corrupt_wire_blob_degrades_to_cold(recwarn):
    clear_memory_cache()
    wire = SnapshotWire("k3", 0, b"RSNPgarbage-that-will-not-decode")
    with warnings.catch_warnings():
        warnings.simplefilter("always")
        assert wire.resolve() is None  # cold run, not a crash


def test_resolve_shipped_passthrough_and_unwrap():
    clear_memory_cache()
    spec, snap = _snapshot()
    assert resolve_shipped(None) is None
    assert resolve_shipped(snap) is snap
    wire = SnapshotWire.from_snapshot(snap, key="k4", seed=0)
    assert isinstance(resolve_shipped(wire), EngineSnapshot)
    assert resolve_shipped(SnapshotRef("k4", 0)) is not None


def test_shared_checkpoint_store_is_per_key(tmp_path):
    a = CheckpointStore.shared("key-a", directory=None)
    assert CheckpointStore.shared("key-a", directory=None) is a
    assert CheckpointStore.shared("key-b", directory=None) is not a
    on_disk = CheckpointStore.shared("key-a", directory=str(tmp_path))
    assert on_disk is not a
    assert CheckpointStore.shared("key-a", directory=str(tmp_path)) is on_disk


def test_disk_store_round_trips_byte_container(tmp_path):
    spec, snap = _snapshot()
    store = CheckpointStore("disk-rt", directory=str(tmp_path))
    store.put(0, snap)
    clear_memory_cache()
    store2 = CheckpointStore("disk-rt", directory=str(tmp_path))
    back = store2.get(0)
    assert back is not None
    assert _resume_fingerprint(spec, back) == _resume_fingerprint(spec, snap)
