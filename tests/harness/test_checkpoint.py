"""Checkpoint store, fingerprinting, and warm-session identity."""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro.apps import registry
from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.harness import checkpoint as ckpt
from repro.harness.checkpoint import (
    CheckpointCacheWarning,
    CheckpointStore,
    checkpoint_fingerprint,
    clear_memory_cache,
    execute_run,
)
from repro.harness.runner import ProfileRequest, run_profile_session
from repro.sim.snapshot import SNAPSHOT_VERSION, EngineSnapshot


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


def _dummy_snapshot(seed=0, when=0):
    return EngineSnapshot(
        version=SNAPSHOT_VERSION,
        seed=seed,
        when=when,
        n_ops=0,
        oplog=[],
        threads=[],
        sync=[],
        heap=[],
        engine={},
        faults=None,
        hook=None,
    )


# -- fingerprint -------------------------------------------------------------------


def test_fingerprint_normalizes_seed_and_audit_out():
    spec = registry.build("example")
    a = checkpoint_fingerprint(spec, replace(CozConfig(), seed=1), None)
    b = checkpoint_fingerprint(spec, replace(CozConfig(), seed=2), None)
    c = checkpoint_fingerprint(spec, replace(CozConfig(), seed=1, audit=True), None)
    assert a == b == c


def test_fingerprint_varies_with_config_app_and_faults():
    from repro.sim.faults import FaultPlan

    spec = registry.build("example")
    base = checkpoint_fingerprint(spec, CozConfig(), None)
    assert base != checkpoint_fingerprint(
        spec, replace(CozConfig(), enable_sampling=False), None
    )
    assert base != checkpoint_fingerprint(
        registry.build("example", rounds=7), CozConfig(), None
    )
    assert base != checkpoint_fingerprint(
        spec, CozConfig(), FaultPlan.chaos(seed=1)
    )


def test_fingerprint_rejects_unregistered_specs():
    spec = replace(registry.build("example"), registry_ref=None)
    with pytest.raises(ValueError, match="registry"):
        checkpoint_fingerprint(spec, CozConfig(), None)


# -- store -------------------------------------------------------------------------


def test_memory_store_is_an_lru():
    store = CheckpointStore("key")
    for seed in range(ckpt._MEMORY_CAP + 4):
        store.put(seed, _dummy_snapshot(seed))
    assert store.get(0) is None  # evicted
    assert store.get(1) is None
    newest = ckpt._MEMORY_CAP + 3
    assert store.get(newest).seed == newest


def test_memory_store_isolates_fingerprints():
    a = CheckpointStore("key-a")
    b = CheckpointStore("key-b")
    a.put(1, _dummy_snapshot(1))
    assert b.get(1) is None
    assert a.get(1) is not None


def test_disk_store_round_trip(tmp_path):
    d = str(tmp_path / "cache")
    CheckpointStore("key", directory=d).put(3, _dummy_snapshot(3, when=123))
    clear_memory_cache()  # force the disk path
    snap = CheckpointStore("key", directory=d).get(3)
    assert snap is not None and snap.when == 123
    manifest = json.load(open(os.path.join(d, "MANIFEST.json")))
    assert manifest["fingerprint"] == "key"
    assert manifest["snapshot_version"] == SNAPSHOT_VERSION


def test_stale_disk_cache_is_invalidated_with_a_warning(tmp_path):
    """A fingerprint mismatch must warn and purge — never silently reuse."""
    d = str(tmp_path / "cache")
    CheckpointStore("old-key", directory=d).put(1, _dummy_snapshot(1))
    clear_memory_cache()
    with pytest.warns(CheckpointCacheWarning, match="invalidating"):
        store = CheckpointStore("new-key", directory=d)
    assert store.get(1) is None, "stale checkpoint survived invalidation"
    assert not [f for f in os.listdir(d) if f.endswith(".ckpt")]
    # the rewritten manifest makes the next open clean and warning-free
    clear_memory_cache()
    import warnings as _w

    with _w.catch_warnings():
        _w.simplefilter("error", CheckpointCacheWarning)
        CheckpointStore("new-key", directory=d)


def test_corrupt_checkpoint_file_is_discarded_with_a_warning(tmp_path):
    d = str(tmp_path / "cache")
    store = CheckpointStore("key", directory=d)
    with open(os.path.join(d, "seed-5.ckpt"), "wb") as fh:
        fh.write(b"not a pickle")
    with pytest.warns(CheckpointCacheWarning, match="unreadable"):
        assert store.get(5) is None
    assert not os.path.exists(os.path.join(d, "seed-5.ckpt"))


# -- execute_run -------------------------------------------------------------------


def _builder(seed, rounds=40):
    spec = registry.build("example", rounds=rounds)

    def build():
        cfg = replace(CozConfig(scope=spec.scope), seed=seed)
        prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
        return spec.build(seed), prof, None

    return build


def _result_key(result, prof):
    return (
        result.runtime_ns,
        result.sample_count,
        result.events_processed,
        prof.data.to_json(),
    )


def test_execute_run_populates_then_resumes_identically():
    build = _builder(seed=6)
    store = CheckpointStore("fp")
    cold, cold_prof = execute_run(build, 6, store=store)
    assert store.get(6) is not None, "populate pass recorded no checkpoint"
    warm, warm_prof = execute_run(build, 6, store=store)
    assert _result_key(warm, warm_prof) == _result_key(cold, cold_prof)


def test_execute_run_falls_back_cold_on_bad_snapshot():
    build = _builder(seed=8)
    cold, cold_prof = execute_run(build, 8)
    bad = replace(_dummy_snapshot(8), version=99)
    with pytest.warns(CheckpointCacheWarning, match="rerunning cold"):
        warm, warm_prof = execute_run(build, 8, snapshot=bad)
    assert _result_key(warm, warm_prof) == _result_key(cold, cold_prof)


# -- session-level identity --------------------------------------------------------


def _session(jobs=1, checkpoint=True, checkpoint_dir=None):
    spec = registry.build("example")
    return run_profile_session(
        spec,
        ProfileRequest(
            runs=2,
            jobs=jobs,
            checkpoint=checkpoint,
            checkpoint_dir=checkpoint_dir,
        ),
    )


def test_checkpointed_session_matches_cold_session():
    cold = _session(checkpoint=False)
    assert not ckpt._MEMORY, "checkpoint=False must not record snapshots"
    _session(checkpoint=True)  # populate
    assert ckpt._MEMORY, "populate pass recorded nothing"
    warm = _session(checkpoint=True)  # resumes every run
    assert warm.data == cold.data


def test_parallel_session_resumes_from_disk_cache(tmp_path):
    d = str(tmp_path / "cache")
    cold = _session(checkpoint=False)
    _session(checkpoint=True, checkpoint_dir=d)  # populate (serial)
    assert [f for f in os.listdir(d) if f.endswith(".ckpt")]
    clear_memory_cache()
    warm = _session(jobs=2, checkpoint=True, checkpoint_dir=d)
    assert warm.data == cold.data


# -- cross-process coordination ----------------------------------------------


def _concurrent_open_and_put(directory, key, barrier, errors, idx):
    """Worker for the multiprocessing dedup test: every process opens the
    same cache directory at the same instant, then races to populate the
    same seeds (first-writer-wins on disk)."""
    try:
        barrier.wait(timeout=30)
        store = CheckpointStore(key, directory=directory)
        for seed in range(4):
            store.put(seed, _dummy_snapshot(seed, when=seed * 10))
        for seed in range(4):
            snap = store.get(seed)
            assert snap is not None and snap.when == seed * 10
    except BaseException as exc:  # report, don't hang the parent
        errors.put(f"worker {idx}: {type(exc).__name__}: {exc}")


@pytest.mark.skipif(os.name != "posix", reason="fork start method required")
def test_concurrent_processes_share_one_disk_cache(tmp_path):
    """N real processes open/validate/populate one cache concurrently: the
    advisory lock serializes manifest initialization, puts dedup
    first-writer-wins, and nothing corrupts."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    d = str(tmp_path / "cache")
    n = 4
    barrier = ctx.Barrier(n)
    errors = ctx.Queue()
    procs = [
        ctx.Process(
            target=_concurrent_open_and_put, args=(d, "shared-key", barrier, errors, i)
        )
        for i in range(n)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    assert errors.empty(), errors.get()

    # exactly one coherent cache came out the other side
    manifest = json.load(open(os.path.join(d, "MANIFEST.json")))
    assert manifest["fingerprint"] == "shared-key"
    ckpts = sorted(f for f in os.listdir(d) if f.endswith(".ckpt"))
    assert ckpts == [f"seed-{i}.ckpt" for i in range(4)]
    # no leftover temp files from racing manifest/snapshot writers
    assert not [f for f in os.listdir(d) if ".tmp" in f]
    clear_memory_cache()
    for seed in range(4):
        snap = CheckpointStore("shared-key", directory=d).get(seed)
        assert snap is not None and snap.when == seed * 10
