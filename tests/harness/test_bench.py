"""``repro bench`` harness: schema, sim-metric determinism, history.

Wall-clock numbers are machine-dependent, so no test here asserts on
timing; the simulator-side metrics (virtual ns, events, samples) are
bit-deterministic and double as an engine-identity check across the
bench's session/program/legacy execution paths.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.harness.bench import (
    HARNESS_APPS,
    SCHEMA,
    VARIANTS,
    BenchCell,
    run_cell,
    write_bench,
)


def _metrics(result):
    return (result.virtual_ns, result.events, result.samples)


def test_cell_sim_metrics_deterministic():
    cell = BenchCell(app="example", variant="program", runs=1, repeats=1)
    assert _metrics(run_cell(cell)) == _metrics(run_cell(cell))


def test_session_and_program_paths_agree():
    """The public session path and the bench's program loop simulate the
    exact same work (same seeds, same profiler construction)."""
    session = run_cell(BenchCell("example", "session", runs=2, repeats=1))
    program = run_cell(BenchCell("example", "program", runs=2, repeats=1))
    assert _metrics(session) == _metrics(program)


def test_legacy_variant_same_results_more_events():
    base = run_cell(BenchCell("example", "program", runs=1, repeats=1))
    legacy = run_cell(BenchCell("example", "legacy", runs=1, repeats=1))
    assert legacy.virtual_ns == base.virtual_ns
    assert legacy.samples == base.samples
    # the whole point of coalescing: fewer heap events for the same result
    assert legacy.events > base.events


def test_bench_cli_schema_and_history(tmp_path, capsys):
    out = tmp_path / "BENCH_engine.json"
    # pre-seed a recorded history entry; a re-run must never erase it
    out.write_text(json.dumps({"schema": SCHEMA, "history": [{"label": "seed"}]}))
    rc = cli_main(
        ["bench", "--quick", "--app", "example",
         "--output", str(out), "--label", "current"]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == SCHEMA
    assert doc["quick"] is True
    # the harness cell only runs for its dedicated app list
    assert {c["name"] for c in doc["cells"]} == {
        f"example/{variant}"
        for variant in VARIANTS
        if variant != "harness" or "example" in HARNESS_APPS
    }
    for cell in doc["cells"]:
        for key in (
            "wall_s", "wall_s_all", "wall_s_per_run", "virtual_ns",
            "events", "samples", "events_per_sec", "virtual_ns_per_wall_s",
        ):
            assert key in cell, f"{cell['name']} missing {key}"
    assert "speedup_vs_legacy" in doc["summary"]
    assert [h["label"] for h in doc["history"]] == ["seed", "current"]
    assert "bench results written" in capsys.readouterr().out


def test_write_bench_tolerates_missing_history(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    write_bench({"schema": SCHEMA, "history": [{"label": "a"}]}, str(out))
    doc = json.loads(out.read_text())
    assert [h["label"] for h in doc["history"]] == ["a"]


@pytest.mark.parametrize(
    "prior",
    [
        "{{{{ not json at all",                       # undecodable
        json.dumps({"schema": SCHEMA, "history": 7}),  # wrong history type
    ],
    ids=["corrupt-json", "non-list-history"],
)
def test_write_bench_tolerates_corrupt_history(tmp_path, prior):
    """A broken prior file must not raise away a finished measurement."""
    out = tmp_path / "BENCH_engine.json"
    out.write_text(prior)
    with pytest.warns(UserWarning, match="starting a fresh history"):
        write_bench({"schema": SCHEMA, "history": [{"label": "new"}]}, str(out))
    doc = json.loads(out.read_text())
    assert doc["schema"] == SCHEMA
    assert [h["label"] for h in doc["history"]] == ["new"]
