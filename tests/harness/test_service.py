"""Profiling service: admission control, dedup, degradation, healthz.

Unit tests drive the tenant machinery with a fake clock (no sleeps); the
integration tests run a real in-process daemon over a real Unix socket in
a tmp state dir, with sessions kept tiny (2 runs, 10 ms experiments).
"""

import socket as socket_mod

import pytest

from repro.harness.service import (
    AdmissionController,
    CircuitBreaker,
    JobSpec,
    ResultStore,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    TenantPolicy,
    TokenBucket,
    WireError,
    job_fingerprint,
)
from repro.sim.errors import (
    RunFaultedError,
    ServiceError,
    ServiceOverloadError,
)

needs_unix_sockets = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"),
    reason="no AF_UNIX sockets on this platform",
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _spec(**kw) -> JobSpec:
    base = dict(tenant="t", app="example", runs=2, experiment_ms=10.0)
    base.update(kw)
    return JobSpec(**base)


# -- wire ---------------------------------------------------------------------


def test_jobspec_roundtrip_and_validation():
    spec = _spec(chaos=0.5, planner="adaptive", budget=4, deadline_s=2.0)
    assert JobSpec.from_wire(spec.to_wire()) == spec
    with pytest.raises(WireError):
        JobSpec(tenant="", app="example")
    with pytest.raises(WireError):
        JobSpec(tenant="t", app="example", runs=0)
    with pytest.raises(WireError):
        JobSpec(tenant="t", app="example", deadline_s=-1.0)
    with pytest.raises(WireError):
        JobSpec.from_wire({"tenant": "t", "app": "example", "bogus": 1})


def test_fingerprint_excludes_admission_knobs():
    # tenant and deadline are admission inputs, not work: any combination
    # of them is the same job, so it dedups and cache-hits across tenants
    fp = job_fingerprint(_spec())
    assert job_fingerprint(_spec(tenant="other")) == fp
    assert job_fingerprint(_spec(deadline_s=5.0)) == fp
    # everything that shapes results changes the fingerprint
    assert job_fingerprint(_spec(runs=3)) != fp
    assert job_fingerprint(_spec(base_seed=7)) != fp
    assert job_fingerprint(_spec(chaos=0.5)) != fp
    assert job_fingerprint(_spec(planner="adaptive")) != fp


# -- tenants ------------------------------------------------------------------


def test_token_bucket_refills_on_fake_clock():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
    assert bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()  # burst exhausted, no time passed
    clock.advance(0.5)  # refills one token at 2/s
    assert bucket.try_take()
    assert not bucket.try_take()
    clock.advance(10.0)  # refill clamps at burst
    assert bucket.tokens == pytest.approx(2.0)


def test_breaker_opens_after_threshold_and_recloses_after_healthy_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown_s=30.0, clock=clock)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open" and not breaker.allow()
    clock.advance(29.0)
    assert not breaker.allow()  # still cooling down
    clock.advance(1.5)
    assert breaker.allow()  # the half-open probe
    assert breaker.state == "half-open"
    assert not breaker.allow()  # only one probe at a time
    breaker.record_success()
    assert breaker.state == "closed" and breaker.allow()


def test_breaker_failed_probe_reopens_for_another_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=clock)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == "open"
    clock.advance(9.0)
    assert not breaker.allow()
    clock.advance(1.5)
    assert breaker.allow()


def test_admission_sheds_are_typed_and_counted():
    clock = FakeClock()
    ctl = AdmissionController(
        TenantPolicy(max_queue_depth=1, rate_per_s=1.0, burst=1,
                     breaker_threshold=1, breaker_cooldown_s=60.0),
        clock,
    )
    state = ctl.tenant("alice")
    # over quota
    state.active = 1
    with pytest.raises(ServiceOverloadError) as exc:
        ctl.check_capacity(state)
    assert exc.value.reason == "queue-depth" and exc.value.tenant == "alice"
    assert isinstance(exc.value, ServiceError)
    assert isinstance(exc.value, RunFaultedError)  # environmental taxonomy
    # over rate
    state.active = 0
    ctl.check_capacity(state)  # consumes the single burst token
    with pytest.raises(ServiceOverloadError) as exc:
        ctl.check_capacity(state)
    assert exc.value.reason == "rate-limit"
    # breaker
    state.breaker.record_failure()
    with pytest.raises(ServiceOverloadError) as exc:
        ctl.check_breaker(state)
    assert exc.value.reason == "circuit-breaker"
    snap = ctl.snapshot()["alice"]
    assert snap["shed_queue_depth"] == 1
    assert snap["shed_rate_limit"] == 1
    assert snap["shed_circuit_breaker"] == 1
    assert snap["shed_total"] == 3


# -- admission races (no sockets: daemon used as a library, never started) ----


def _lib_daemon(tmp_path, clock=None, **policy_kw):
    """A daemon instance for unit-testing submit/settle without start()."""
    policy = TenantPolicy(**{
        "rate_per_s": 1000.0, "burst": 1000, **policy_kw,
    })
    config = ServiceConfig(state_dir=str(tmp_path / "state"), workers=1,
                           policy=policy)
    if clock is None:
        return ServiceDaemon(config)
    return ServiceDaemon(config, clock=clock)


def test_duplicate_during_journal_fsync_coalesces_not_double_enqueues(tmp_path):
    """Regression: the dedup check and the enqueue were not atomic — a
    duplicate arriving while the first submission was fsync'ing the queue
    journal passed the in-flight check too and enqueued a second execution
    of the same session journal.  The fingerprint is now reserved inside
    the admission critical section, so the duplicate coalesces."""
    d = _lib_daemon(tmp_path)
    dup = {}
    real_journal = d._journal_event

    def racing_journal(doc):
        if doc.get("kind") == "submit" and not dup:
            # a second tenant submits the same work mid-fsync
            dup.update(d.submit(_spec(tenant="bob")))
        real_journal(doc)

    d._journal_event = racing_journal
    first = d.submit(_spec(tenant="alice"))
    assert dup.get("dedup") is True
    assert dup["job_id"] == first["job_id"]
    assert d.queue.depth == 1  # one runnable job, not two
    job = d.queue.by_id[first["job_id"]]
    assert sorted(job.tenants) == ["alice", "bob"]


def test_submission_during_settle_does_not_coalesce_or_leak_quota(tmp_path):
    """Regression: _settle decremented tenant quota, then journaled the
    terminal event, and only afterwards dropped the dedup index entry — a
    submit in that window coalesced onto the settled job and incremented
    an active count nothing would ever decrement."""
    d = _lib_daemon(tmp_path)
    spec = _spec(tenant="alice")
    first = d.submit(spec)
    job = d.queue.by_id[first["job_id"]]
    racer = {}
    real_journal = d._journal_event

    def racing_journal(doc):
        real_journal(doc)
        if doc.get("kind") == "terminal":
            racer.update(d.submit(spec))

    d._journal_event = racing_journal
    d._settle(job, "failed", error={"error": "X", "message": "boom"})
    # the racing submit got a fresh job, not a coalesce onto the corpse
    assert "dedup" not in racer
    assert racer["job_id"] != first["job_id"]
    # quota is exact: the settled job released its slot, the new job holds one
    assert d.admission.tenant("alice").active == 1


def test_half_open_probe_released_on_cache_hit_and_capacity_shed(tmp_path):
    """Regression: a half-open probe that resolved as a cache hit or was
    shed by quota/rate never fed the breaker, so every later allow()
    returned False and the tenant was quarantined forever."""
    clock = FakeClock()
    d = _lib_daemon(tmp_path, clock=clock,
                    max_queue_depth=1, breaker_threshold=1,
                    breaker_cooldown_s=10.0)
    spec = _spec()
    state = d.admission.tenant(spec.tenant)
    state.breaker.record_failure()  # open
    clock.advance(10.0)

    # probe admitted, then shed on queue depth: the slot must come back
    state.active = 1
    with pytest.raises(ServiceOverloadError) as exc:
        d.submit(spec)
    assert exc.value.reason == "queue-depth"
    assert state.breaker.state == "open"
    state.active = 0

    # probe admitted, then served from the result cache: same story
    d.results.put(job_fingerprint(spec), {"state": "done"})
    r = d.submit(spec)
    assert r["cached"]
    assert state.breaker.state == "open"

    # the cooldown already elapsed, so the tenant is NOT stuck: the next
    # genuinely-new submission is re-admitted as a fresh probe
    fresh = _spec(base_seed=99)
    accepted = d.submit(fresh)
    assert accepted["ok"]
    assert state.breaker.state == "half-open"


def test_shed_probe_job_releases_slot_instead_of_wedging_breaker(tmp_path):
    """A probe job that terminates without a health verdict (deadline
    shed) must return its slot: shed is not evidence either way."""
    clock = FakeClock()
    d = _lib_daemon(tmp_path, clock=clock,
                    breaker_threshold=1, breaker_cooldown_s=10.0)
    spec = _spec(deadline_s=30.0)
    state = d.admission.tenant(spec.tenant)
    state.breaker.record_failure()
    clock.advance(10.0)
    accepted = d.submit(spec)  # the half-open probe job
    assert accepted["ok"] and state.breaker.state == "half-open"
    job = d.queue.by_id[accepted["job_id"]]
    d._settle(job, "shed", breaker_failure=False, shed_reason="deadline")
    assert state.breaker.state == "open"
    again = d.submit(_spec(base_seed=77))
    assert again["ok"] and state.breaker.state == "half-open"


def test_recovered_job_rearms_deadline(tmp_path):
    """Regression: _recover rebuilt the Job from the journaled spec but
    never re-armed deadline_monotonic, so a deadline-carrying job ran
    unbounded after a daemon restart."""
    first = _lib_daemon(tmp_path, default_deadline_s=45.0)
    explicit = _spec(deadline_s=30.0)
    defaulted = _spec(base_seed=7)  # no deadline of its own: policy applies
    for spec in (explicit, defaulted):
        first._journal_event({
            "kind": "submit",
            "fingerprint": job_fingerprint(spec),
            "spec": spec.to_wire(),
            "tenants": [spec.tenant],
        })
    second = _lib_daemon(tmp_path, default_deadline_s=45.0)
    second._recover()
    jobs = {j.fingerprint: j for j in second.queue.jobs()}
    assert all(j.recovered for j in jobs.values())
    assert jobs[job_fingerprint(explicit)].deadline_monotonic is not None
    assert jobs[job_fingerprint(defaulted)].deadline_monotonic is not None


# -- result store -------------------------------------------------------------


def test_result_store_memory_and_disk_roundtrip(tmp_path):
    store = ResultStore(str(tmp_path / "results"))
    assert store.get("aa" * 32) is None
    doc = {"schema": "service-result/v1", "x": 1}
    store.put("aa" * 32, doc)
    assert store.get("aa" * 32) == doc
    # a second store over the same dir reads it cold from disk
    again = ResultStore(str(tmp_path / "results"))
    assert again.get("aa" * 32) == doc
    assert again.hits == 1 and store.misses == 1


def test_result_store_lru_evicts_memory_not_disk(tmp_path):
    store = ResultStore(str(tmp_path / "results"), memory_cap=2)
    for i in range(4):
        store.put(f"{i:02d}" * 32, {"i": i})
    assert len(store._memory) == 2
    # evicted entries still resolve via disk
    assert store.get("00" * 32) == {"i": 0}


def _profile_doc():
    """A small but complete service-result document with real profile data."""
    import json as _json

    from repro.core.experiment import ExperimentResult
    from repro.core.profile_data import ProfileData, RunFailure, RunInfo
    from repro.sim.source import line as _line

    data = ProfileData()
    data.add_experiment(ExperimentResult(
        line=_line("svc.c:3"), speedup_pct=0, delay_ns=0, start_ns=0,
        end_ns=10_000_000, delay_count=0, selected_samples=4,
        visits={"p": 6},
    ))
    run = RunInfo(runtime_ns=50_000_000, total_delay_ns=0)
    run.line_samples.update({_line("svc.c:3"): 11})
    data.add_run(run)
    data.add_failure(RunFailure(
        index=1, seed=1, error_type="ThreadCrashFault", message="shed",
    ))
    return {
        "schema": "service-result/v1",
        "fingerprint": "cc" * 32,
        "state": "degraded",
        "degraded": True,
        "failures": [f.to_dict() for f in data.failures],
        "profile_data": _json.loads(data.to_json()),
    }


def test_result_store_binary_container_round_trips_profiles(tmp_path):
    import json as _json
    import os as _os

    doc = _profile_doc()
    store = ResultStore(str(tmp_path / "results"))
    store.put(doc["fingerprint"], doc)
    bin_path = store._bin_path(doc["fingerprint"])
    json_path = store._json_path(doc["fingerprint"])
    assert _os.path.exists(bin_path)   # authoritative binary container
    assert _os.path.exists(json_path)  # greppable debug view
    # the binary file must actually be smaller than the JSON document
    assert _os.path.getsize(bin_path) < _os.path.getsize(json_path)
    # a cold store decodes the binary container back to the same document
    again = ResultStore(str(tmp_path / "results"))
    got = again.get(doc["fingerprint"])
    assert _json.dumps(got, sort_keys=True) == _json.dumps(doc, sort_keys=True)


def test_result_store_reads_legacy_json_only_files(tmp_path):
    import json as _json
    import os as _os

    doc = _profile_doc()
    directory = str(tmp_path / "results")
    _os.makedirs(directory)
    # an older daemon wrote only the JSON file
    with open(_os.path.join(directory, f"{doc['fingerprint']}.json"), "w") as f:
        _json.dump(doc, f, sort_keys=True)
    store = ResultStore(directory)
    got = store.get(doc["fingerprint"])
    assert _json.dumps(got, sort_keys=True) == _json.dumps(doc, sort_keys=True)


def test_result_store_doc_without_profile_falls_back_to_json(tmp_path):
    import os as _os

    store = ResultStore(str(tmp_path / "results"))
    doc = {"schema": "service-result/v1", "state": "done"}
    store.put("dd" * 32, doc)
    assert not _os.path.exists(store._bin_path("dd" * 32))
    assert _os.path.exists(store._json_path("dd" * 32))
    again = ResultStore(str(tmp_path / "results"))
    assert again.get("dd" * 32) == doc


# -- daemon integration -------------------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    daemons = []

    def start(**kw):
        policy = kw.pop("policy", TenantPolicy(rate_per_s=1000.0, burst=1000))
        config = ServiceConfig(
            state_dir=str(tmp_path / "state"),
            workers=kw.pop("workers", 2),
            policy=policy,
            **kw,
        )
        d = ServiceDaemon(config)
        d.start()
        daemons.append(d)
        client = ServiceClient(config.sock)
        assert client.wait_until_ready(10.0)
        return d, client

    yield start
    for d in daemons:
        d.stop()


@needs_unix_sockets
def test_duplicate_concurrent_submissions_execute_once(daemon):
    d, client = daemon()
    first = client.submit(_spec(tenant="alice"))
    second = client.submit(_spec(tenant="bob"))  # same work, other tenant
    assert second["dedup"] and second["job_id"] == first["job_id"]
    done = client.wait(first["job_id"], timeout_s=60.0)
    assert done["ok"] and done["job"]["state"] == "done"
    assert done["job"]["dedup_count"] == 1
    assert sorted(done["job"]["tenants"]) == ["alice", "bob"]
    status = client.status()["status"]
    assert status["cache"]["dedup_coalesced"] == 1
    # exactly one session journal exists: the job ran once
    assert status["jobs"]["total"] == 1


@needs_unix_sockets
def test_completed_job_serves_from_result_cache(daemon):
    d, client = daemon()
    first = client.submit(_spec(), wait_s=60.0)
    assert first["ok"] and first["result"]["state"] == "done"
    again = client.submit(_spec())
    assert again["cached"] and again["result"] == first["result"]
    status = client.status()["status"]
    assert status["cache"]["result_hits"] == 1


@needs_unix_sockets
def test_queue_depth_quota_sheds_with_typed_error(daemon):
    d, client = daemon(policy=TenantPolicy(
        max_queue_depth=1, rate_per_s=1000.0, burst=1000,
    ), workers=1)
    accepted = client.submit(_spec(tenant="alice"))
    assert accepted["ok"]
    shed = client.submit(_spec(tenant="alice", base_seed=50))
    assert not shed["ok"]
    assert shed["error"] == "ServiceOverloadError"
    assert shed["reason"] == "queue-depth" and shed["tenant"] == "alice"
    # another tenant is not starved by alice's full queue
    other = client.submit(_spec(tenant="bob", base_seed=60))
    assert other["ok"]
    client.wait(accepted["job_id"], timeout_s=60.0)
    client.wait(other["job_id"], timeout_s=60.0)


@needs_unix_sockets
def test_rate_limit_sheds(daemon):
    d, client = daemon(policy=TenantPolicy(
        max_queue_depth=100, rate_per_s=0.001, burst=1,
    ))
    first = client.submit(_spec(tenant="alice"))
    assert first["ok"]
    shed = client.submit(_spec(tenant="alice", base_seed=50))
    assert not shed["ok"] and shed["reason"] == "rate-limit"


@needs_unix_sockets
def test_chaos_tenant_degrades_without_starving_clean_tenant(daemon):
    d, client = daemon()
    # full-intensity chaos: every run injects a fault, session degrades
    chaos = client.submit(_spec(tenant="mallory", chaos=1.0))
    clean = client.submit(_spec(tenant="alice", base_seed=200))
    chaos_done = client.wait(chaos["job_id"], timeout_s=60.0)
    clean_done = client.wait(clean["job_id"], timeout_s=60.0)
    assert chaos_done["job"]["state"] == "degraded"
    assert chaos_done["result"]["degraded"]
    assert len(chaos_done["result"]["failures"]) == 2
    assert clean_done["job"]["state"] == "done"
    assert not clean_done["result"]["degraded"]
    status = client.status()["status"]
    assert status["tenants"]["mallory"]["degraded"] == 1
    assert status["tenants"]["alice"]["degraded"] == 0
    assert status["tenants"]["mallory"]["breaker"] == "closed"  # 1 < threshold


@needs_unix_sockets
def test_breaker_quarantines_chaos_tenant_then_probe_recovers(daemon):
    d, client = daemon(policy=TenantPolicy(
        max_queue_depth=100, rate_per_s=1000.0, burst=1000,
        breaker_threshold=2, breaker_cooldown_s=3600.0,
    ))
    for seed in (0, 100):
        r = client.submit(_spec(tenant="mallory", chaos=1.0, base_seed=seed),
                          wait_s=60.0)
        assert r["job"]["state"] == "degraded"
    # threshold reached: mallory is quarantined, even for cached results
    shed = client.submit(_spec(tenant="mallory", chaos=1.0))
    assert not shed["ok"] and shed["reason"] == "circuit-breaker"
    status = client.status()["status"]
    assert status["tenants"]["mallory"]["breaker"] == "open"
    assert status["status"] == "degraded"  # an open breaker degrades healthz
    # a clean tenant keeps its workers the whole time
    clean = client.submit(_spec(tenant="alice", base_seed=300), wait_s=60.0)
    assert clean["ok"] and clean["job"]["state"] == "done"
    # force the cooldown to expire: the next submission is the half-open
    # probe, and its clean completion re-closes the breaker
    mallory = d.admission.tenant("mallory")
    mallory.breaker._opened_at = -10_000.0
    probe = client.submit(_spec(tenant="mallory", base_seed=400), wait_s=60.0)
    assert probe["ok"] and probe["job"]["state"] == "done"
    assert client.status()["status"]["tenants"]["mallory"]["breaker"] == "closed"


@needs_unix_sockets
def test_deadline_expired_in_queue_is_shed(daemon):
    d, client = daemon()
    r = client.submit(_spec(deadline_s=0.0001))
    # whether the deadline fired while queued (typed error) or mid-session
    # (partial result), the job must terminate as shed
    done = client.wait(r["job_id"], timeout_s=60.0)
    assert done["ok"]
    assert done["job"]["state"] == "shed"
    err = done["job"]["error"]
    if err is not None:
        assert err["error"] == "DeadlineExceededError"  # expired in queue
    else:
        assert done["result"]["partial"]  # expired mid-session
        # partial results are never cached: a resubmit must finish the job
        assert d.results.get(done["job"]["fingerprint"]) is None
    assert client.status()["status"]["tenants"]["t"]["shed_deadline"] == 1


@needs_unix_sockets
def test_healthz_shape_and_worker_accounting(daemon):
    d, client = daemon(workers=3)
    status = client.status()["status"]
    assert status["schema"] == "service-status/v1"
    assert status["status"] == "ok"
    assert status["workers"] == {"configured": 3, "alive": 3, "busy": 0}
    for key in ("depth", "running", "latency_avg_s", "latency_p95_s"):
        assert key in status["queue"]
    for key in ("result_hits", "result_misses", "hit_rate", "dedup_coalesced"):
        assert key in status["cache"]
    assert status["uptime_s"] >= 0


@needs_unix_sockets
def test_wire_version_mismatch_refused(daemon):
    d, client = daemon()
    bad = client._call({"op": "ping", "wire": 999})
    # the dict literal's own "wire" key wins over the client default
    assert not bad["ok"] and bad["error"] == "WireError"


@needs_unix_sockets
def test_unknown_app_is_a_typed_wire_failure(daemon):
    d, client = daemon()
    r = client.submit(_spec(app="no-such-app"))
    assert not r["ok"] and r["error"] == "UnknownAppError"
