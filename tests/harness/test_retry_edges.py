"""Retry/backoff/breaker edge cases and fatal-signal propagation.

The executor's :class:`RetryPolicy` and the service's worker loop share a
failure philosophy: environmental failures are retried with bounded
backoff, tenant-level failure streaks open a breaker that heals via a
probe, and operator signals (``KeyboardInterrupt`` / ``SystemExit``) are
*never* treated as retryable work — they stop the world.
"""

import socket as socket_mod
import threading

import pytest

from repro.harness.parallel import RetryPolicy
from repro.harness.service import (
    CircuitBreaker,
    Job,
    JobSpec,
    ServiceConfig,
    ServiceDaemon,
    TenantPolicy,
)

needs_unix_sockets = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"),
    reason="no AF_UNIX sockets on this platform",
)


# -- RetryPolicy backoff ------------------------------------------------------


def test_backoff_cap_bounds_every_sleep():
    policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=2.0, jitter=0.5)
    for attempt in range(12):  # 0.05 * 2^11 >> cap without the clamp
        for task_seed in range(8):
            sleep = policy.backoff_s(attempt, task_seed)
            assert 0.0 < sleep <= policy.backoff_cap_s
    # at high attempts the pre-jitter base is exactly the cap
    assert policy.backoff_s(30, 0) >= policy.backoff_cap_s * (1 - policy.jitter)


def test_backoff_without_jitter_is_exact_capped_doubling():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5, jitter=0.0)
    assert policy.backoff_s(0, 0) == pytest.approx(0.1)
    assert policy.backoff_s(1, 0) == pytest.approx(0.2)
    assert policy.backoff_s(2, 0) == pytest.approx(0.4)
    assert policy.backoff_s(3, 0) == pytest.approx(0.5)  # capped
    assert policy.backoff_s(50, 0) == pytest.approx(0.5)


def test_backoff_jitter_is_deterministic_per_seed():
    policy = RetryPolicy(jitter=0.5, seed=7)
    assert policy.backoff_s(2, 11) == policy.backoff_s(2, 11)
    assert policy.backoff_s(2, 11) != policy.backoff_s(2, 12)


# -- breaker heal cycle -------------------------------------------------------


def test_breaker_full_heal_cycle_with_fake_clock():
    t = [0.0]
    breaker = CircuitBreaker(threshold=2, cooldown_s=5.0, clock=lambda: t[0])
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "open"
    t[0] = 4.9
    assert not breaker.allow()
    t[0] = 5.0
    assert breaker.allow() and breaker.state == "half-open"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.consecutive_failures == 0
    # a fresh failure streak is needed to re-open
    breaker.record_failure()
    assert breaker.state == "closed"


# -- fatal-signal propagation from the service worker loop --------------------


def _idle_daemon(tmp_path) -> ServiceDaemon:
    """A daemon with no threads and no socket: the worker loop is driven
    directly by the test, so nothing races it for the queued job."""
    return ServiceDaemon(ServiceConfig(
        state_dir=str(tmp_path / "state"),
        workers=1,
        policy=TenantPolicy(rate_per_s=1000.0, burst=1000),
    ))


def _queued_job(daemon: ServiceDaemon) -> Job:
    spec = JobSpec(tenant="t", app="example", runs=1)
    job = Job(job_id="j0001-test", fingerprint="f" * 64, spec=spec,
              tenants=["t"], submitted_monotonic=0.0)
    daemon.admission.tenant("t").active = 1
    daemon.queue.put(job)
    return job


@needs_unix_sockets
@pytest.mark.parametrize("signal_exc", [KeyboardInterrupt, SystemExit])
def test_fatal_signals_propagate_from_worker_loop(tmp_path, signal_exc):
    daemon = _idle_daemon(tmp_path)
    job = _queued_job(daemon)
    daemon._run_session = lambda j: (_ for _ in ()).throw(signal_exc())
    with pytest.raises(signal_exc):
        daemon._worker_loop(0)
    # the job was marked failed before the signal re-raised, the worker
    # recorded itself dead, and the daemon is stopping
    assert job.state == "failed"
    assert job.error == {"error": "Interrupted", "message": "daemon stopping"}
    assert daemon._dead[0]
    assert daemon._stop.is_set()
    assert isinstance(daemon._fatal, signal_exc)
    # run_forever re-raises the worker's fatal signal in the main thread
    daemon._threads = []
    with pytest.raises(signal_exc):
        daemon.run_forever()
    daemon.stop()


@needs_unix_sockets
def test_ordinary_exceptions_fail_the_job_but_not_the_daemon(tmp_path):
    daemon = _idle_daemon(tmp_path)
    job = _queued_job(daemon)

    def boom(j):
        raise RuntimeError("session blew up")

    daemon._run_session = boom
    # drive one take/execute cycle, then stop the loop cleanly
    worker = threading.Thread(target=daemon._worker_loop, args=(0,))
    worker.start()
    assert job.done_event.wait(timeout=10.0)
    daemon._stop.set()
    daemon.queue.close()
    worker.join(timeout=10.0)
    assert not worker.is_alive()
    assert job.state == "failed"
    assert job.error["error"] == "RuntimeError"
    assert daemon._fatal is None and not daemon._dead[0]
    # the failure fed the tenant's breaker
    assert daemon.admission.tenant("t").breaker.consecutive_failures == 1
    daemon.stop()
