"""Crash-safe session journal: wire format, torn-tail tolerance,
fingerprint guarding, and checkpoint/resume bit-identity."""

import json

import pytest

from repro.apps import registry
from repro.core.profile_data import RunFailure
from repro.harness import (
    JournalError,
    ProfileRequest,
    SessionJournal,
    run_profile_session,
    session_fingerprint,
)
from repro.harness.journal import DEFAULT_SEGMENT, canonical

FP = {"kind": "test-session", "app": "example", "runs": 3, "base_seed": 0}


def _run_record(journal, index, seed=None):
    journal.record_run(
        segment=DEFAULT_SEGMENT,
        index=index,
        seed=index if seed is None else seed,
        run={"runtime_ns": 100 + index},
        data_json=json.dumps({"version": 1, "runs": [], "experiments": []}),
    )


# -- wire format / roundtrip ---------------------------------------------------------


def test_create_resume_roundtrip(tmp_path):
    path = tmp_path / "session.jsonl"
    with SessionJournal.create(path, FP) as j:
        _run_record(j, 0)
        _run_record(j, 1)
        j.record_failure(
            DEFAULT_SEGMENT,
            RunFailure(index=2, seed=2, error_type="DeadlockError", message="stuck"),
        )

    resumed = SessionJournal.resume(path, FP)
    try:
        completed = resumed.completed(DEFAULT_SEGMENT)
        assert sorted(completed) == [0, 1, 2]
        assert completed[0].kind == "run"
        assert completed[0].run == {"runtime_ns": 100}
        assert completed[2].kind == "failure"
        assert completed[2].failure["error_type"] == "DeadlockError"
    finally:
        resumed.close()


def test_records_are_one_json_object_per_line(tmp_path):
    path = tmp_path / "session.jsonl"
    with SessionJournal.create(path, FP) as j:
        _run_record(j, 0)
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    header = json.loads(lines[0])
    assert header["kind"] == "header"
    assert header["version"] == 1
    assert json.loads(lines[1])["kind"] == "run"


def test_duplicate_index_keeps_first_record(tmp_path):
    path = tmp_path / "session.jsonl"
    with SessionJournal.create(path, FP) as j:
        _run_record(j, 0, seed=7)
        _run_record(j, 0, seed=8)
    resumed = SessionJournal.resume(path, FP)
    resumed.close()
    assert resumed.completed(DEFAULT_SEGMENT)[0].seed == 7


def test_segments_partition_one_file(tmp_path):
    path = tmp_path / "session.jsonl"
    with SessionJournal.create(path, FP) as j:
        j.record_run("baseline", 0, 0, {"runtime_ns": 1}, "{}")
        j.record_run("optimized", 0, 0, {"runtime_ns": 2}, "{}")
    resumed = SessionJournal.resume(path, FP)
    resumed.close()
    assert resumed.completed("baseline")[0].run == {"runtime_ns": 1}
    assert resumed.completed("optimized")[0].run == {"runtime_ns": 2}
    assert resumed.completed(DEFAULT_SEGMENT) == {}


# -- corruption tolerance ------------------------------------------------------------


def test_torn_final_line_is_dropped_with_warning(tmp_path):
    path = tmp_path / "session.jsonl"
    with SessionJournal.create(path, FP) as j:
        _run_record(j, 0)
        _run_record(j, 1)
    # simulate SIGKILL mid-append: the last record is half-written
    with open(path, "a") as fh:
        fh.write('{"kind": "run", "segment": "profile", "ind')

    with pytest.warns(UserWarning, match="torn final record"):
        resumed = SessionJournal.resume(path, FP)
    resumed.close()
    assert sorted(resumed.completed(DEFAULT_SEGMENT)) == [0, 1]


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "session.jsonl"
    with SessionJournal.create(path, FP) as j:
        _run_record(j, 0)
    text = path.read_text().splitlines()
    text.insert(1, "GARBAGE NOT JSON")
    path.write_text("\n".join(text) + "\n")
    with pytest.raises(JournalError, match="corrupt at line 2"):
        SessionJournal.resume(path, FP)


def test_missing_or_empty_journal_raises(tmp_path):
    with pytest.raises(JournalError, match="does not exist"):
        SessionJournal.resume(tmp_path / "nope.jsonl", FP)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(JournalError, match="is empty"):
        SessionJournal.resume(empty, FP)


def test_wrong_version_refused(tmp_path):
    path = tmp_path / "session.jsonl"
    path.write_text(json.dumps({"kind": "header", "version": 99, "fingerprint": {}}) + "\n")
    with pytest.raises(JournalError, match="version"):
        SessionJournal.resume(path, FP)


# -- fingerprint guard ---------------------------------------------------------------


def test_fingerprint_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "session.jsonl"
    SessionJournal.create(path, FP).close()
    other = dict(FP, runs=5)
    with pytest.raises(JournalError, match="field 'runs' differs"):
        SessionJournal.resume(path, other)


def test_fingerprint_excludes_execution_knobs():
    spec = registry.build("example")
    base = ProfileRequest(runs=3)
    fp = session_fingerprint(spec, base, base.coz_config or _default_cfg(spec))
    for variant in (
        ProfileRequest(runs=3, jobs=4),
        ProfileRequest(runs=3, timeout=9.0),
        ProfileRequest(runs=3, audit=True),
    ):
        assert session_fingerprint(
            spec, variant, variant.coz_config or _default_cfg(spec)
        ) == fp
    differs = ProfileRequest(runs=4)
    assert session_fingerprint(
        spec, differs, differs.coz_config or _default_cfg(spec)
    ) != fp


def _default_cfg(spec):
    from repro.core.config import CozConfig

    return CozConfig(scope=spec.scope)


def test_canonical_is_stable_and_json_safe():
    value = {"b": frozenset({3, 1, 2}), "a": (1, 2)}
    out = canonical(value)
    assert json.loads(json.dumps(out)) == out
    assert out == canonical({"a": [1, 2], "b": {1, 2, 3}})


# -- checkpoint/resume bit-identity --------------------------------------------------


def test_interrupted_session_resumes_bit_identically(tmp_path):
    spec = registry.build("example")
    path = str(tmp_path / "session.jsonl")
    runs = 4

    uninterrupted = run_profile_session(spec, ProfileRequest(runs=runs))

    # die after 2 of 4 runs, then resume
    partial = run_profile_session(
        spec, ProfileRequest(runs=runs, journal=path, stop_after_runs=2)
    )
    assert len(partial.run_results) == 2
    resumed = run_profile_session(spec, ProfileRequest(runs=runs, resume=path))

    assert resumed.data == uninterrupted.data
    assert resumed.data.to_json() == uninterrupted.data.to_json()
    assert [r.runtime_ns for r in resumed.run_results] == [
        r.runtime_ns for r in uninterrupted.run_results
    ]


def test_resume_with_nothing_left_replays_everything(tmp_path):
    spec = registry.build("example")
    path = str(tmp_path / "session.jsonl")
    full = run_profile_session(spec, ProfileRequest(runs=3, journal=path))
    replayed = run_profile_session(spec, ProfileRequest(runs=3, resume=path))
    assert replayed.data == full.data


def test_compare_journals_unprofiled_runs_and_resumes(tmp_path):
    """Comparison runs carry no profile payload (``data`` is null); they
    must journal and replay all the same."""
    from repro.harness import compare_app

    path = str(tmp_path / "compare.jsonl")
    first = compare_app("ferret", runs=3, journal=path)
    # runs journaled under both segments, with null data payloads
    kinds = [json.loads(line) for line in open(path)]
    segs = {d.get("segment") for d in kinds if d["kind"] == "run"}
    assert segs == {"baseline", "optimized"}
    assert all(d["data"] is None for d in kinds if d["kind"] == "run")

    replayed = compare_app("ferret", runs=3, resume=path)
    assert replayed.baseline_ns == first.baseline_ns
    assert replayed.optimized_ns == first.optimized_ns


def test_resume_refuses_other_apps_journal(tmp_path):
    path = str(tmp_path / "session.jsonl")
    run_profile_session(registry.build("example"), ProfileRequest(runs=2, journal=path))
    with pytest.raises(JournalError, match="different session"):
        run_profile_session(registry.build("ferret"), ProfileRequest(runs=2, resume=path))


# -- exclusive create / create-or-resume -----------------------------------------


def test_create_refuses_to_truncate_existing_journal(tmp_path):
    """Regression: create() used mode "w", so pointing a fresh session at a
    finished journal silently erased every fsync'd record.  Creation is
    exclusive now — the existing file survives and the error is typed."""
    path = tmp_path / "session.jsonl"
    with SessionJournal.create(path, FP) as j:
        _run_record(j, 0)
    with pytest.raises(JournalError, match="refusing to truncate"):
        SessionJournal.create(path, FP)
    resumed = SessionJournal.resume(path, FP)
    try:
        assert sorted(resumed.completed(DEFAULT_SEGMENT)) == [0]
    finally:
        resumed.close()


def test_open_creates_fresh_then_resumes_existing(tmp_path):
    path = tmp_path / "session.jsonl"
    with SessionJournal.open(path, FP) as j:  # no file yet: creates
        _run_record(j, 0)
    with SessionJournal.open(path, FP) as j:  # file exists: resumes
        assert sorted(j.completed(DEFAULT_SEGMENT)) == [0]
        _run_record(j, 1)
    resumed = SessionJournal.resume(path, FP)
    try:
        assert sorted(resumed.completed(DEFAULT_SEGMENT)) == [0, 1]
    finally:
        resumed.close()


def test_open_replaces_headerless_journal(tmp_path):
    # a writer that died between exclusive create and the header fsync
    # leaves an empty file: nothing to preserve, recreate it (after the
    # grace window that guards against a live concurrent creator)
    path = tmp_path / "session.jsonl"
    path.write_text("")
    with SessionJournal.open(path, FP, grace_s=0.05) as j:
        _run_record(j, 0)
    resumed = SessionJournal.resume(path, FP)
    try:
        assert sorted(resumed.completed(DEFAULT_SEGMENT)) == [0]
    finally:
        resumed.close()


def test_open_waits_for_concurrent_creators_header(tmp_path):
    """Regression: open() treated 'no intact header' as a dead writer and
    unlinked immediately — but the loser of the create race can observe
    the winner's file before the winner's header line is flushed, and the
    unlink put two live writers on the same path.  open() now retries
    resume through a grace window instead."""
    import os
    import threading
    import time as time_mod

    path = tmp_path / "session.jsonl"
    # the "winner": holds the exclusively-created file, header not yet written
    winner = open(path, "x", encoding="utf-8")
    winner_ino = os.fstat(winner.fileno()).st_ino

    def flush_header():
        time_mod.sleep(0.1)
        winner.write(json.dumps({
            "kind": "header", "version": 1, "fingerprint": canonical(FP),
        }) + "\n")
        winner.flush()

    t = threading.Thread(target=flush_header)
    t.start()
    try:
        loser = SessionJournal.open(path, FP, grace_s=5.0)
    finally:
        t.join()
    try:
        # the loser resumed the winner's live file — same inode, never
        # unlinked and recreated out from under the winner
        assert os.stat(path).st_ino == winner_ino
        assert loser.records == []
        _run_record(loser, 0)
    finally:
        loser.close()
        winner.close()
    resumed = SessionJournal.resume(path, FP)
    try:
        assert sorted(resumed.completed(DEFAULT_SEGMENT)) == [0]
    finally:
        resumed.close()


def test_open_still_refuses_other_sessions_journal(tmp_path):
    # create-or-resume must not weaken the fingerprint guard
    path = tmp_path / "session.jsonl"
    SessionJournal.create(path, FP).close()
    with pytest.raises(JournalError, match="different session"):
        SessionJournal.open(path, {**FP, "runs": 99})
