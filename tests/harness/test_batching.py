"""Batched run dispatch and the warm-worker data plane.

Covers the executor's :class:`~repro.harness.parallel.RunBatch` unit:
auto-sizing, bit-identity across batch sizes, split-on-poison retry, the
one-shot picklability probe, and the process-global worker caches
(registry spec memoization).
"""

import multiprocessing
import os
import pickle
import signal

import pytest

from repro.apps import registry
from repro.apps.example import build_example
from repro.core.config import CozConfig
from repro.harness import parallel
from repro.harness.parallel import (
    ParallelExecutionWarning,
    auto_batch_size,
    clear_probe_cache,
)
from repro.harness.request import ExecutionConfig, ProfileRequest
from repro.harness.runner import profile_app, run_profile_session
from repro.sim.clock import MS


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _small_cfg(scope):
    return CozConfig(scope=scope, experiment_duration_ns=MS(40))


def _request(runs, scope, **exec_kwargs):
    return ProfileRequest(
        runs=runs,
        coz_config=_small_cfg(scope),
        execution=ExecutionConfig(**exec_kwargs),
    )


def _build_poisoned_seed(**kwargs):
    """App whose run with seed 1 crashes, but only inside a pool worker."""
    spec = build_example(rounds=3)
    inner = spec.build

    def build(seed):
        if seed == 1 and _in_worker():
            raise RuntimeError("poisoned run")
        return inner(seed)

    spec.build = build
    return spec


@pytest.fixture
def injected_app():
    registered = []

    def make(name, builder):
        registry.register(name, builder, replace=True)
        registered.append(name)
        return registry.build(name)

    yield make
    for name in registered:
        registry.unregister(name)


# -- auto sizing -------------------------------------------------------------------

def test_auto_batch_size_trivial_cases():
    assert auto_batch_size(0, 4) == 1
    assert auto_batch_size(1, 4) == 1
    assert auto_batch_size(20, 1) == 1
    assert auto_batch_size(20, 0) == 1


def test_auto_batch_size_oversubscribed_covers_in_one_wave(monkeypatch):
    # more workers than cores: parallelism is time-slicing, so the whole
    # session ships as one batch per worker (ceil(n/jobs))
    monkeypatch.setattr(parallel, "_effective_cores", lambda: 1)
    assert auto_batch_size(20, 4) == 5
    assert auto_batch_size(21, 4) == 6
    assert auto_batch_size(4, 2) == 2


def test_auto_batch_size_undersubscribed_keeps_work_stealing(monkeypatch):
    # real cores available: keep several batches per worker in flight so a
    # slow run does not leave workers idle
    monkeypatch.setattr(parallel, "_effective_cores", lambda: 8)
    assert auto_batch_size(64, 2) == 8
    assert auto_batch_size(8, 2) == 1


def test_auto_batch_size_is_capped(monkeypatch):
    monkeypatch.setattr(parallel, "_effective_cores", lambda: 1)
    assert auto_batch_size(1000, 4) == parallel._MAX_BATCH


# -- identity ----------------------------------------------------------------------

def test_batched_sessions_identical_to_serial_across_sizes():
    spec = registry.build("example", rounds=20)
    serial = run_profile_session(
        registry.build("example", rounds=20),
        _request(5, spec.scope, jobs=1),
    )
    for batch_runs in (1, 2, 5):
        batched = run_profile_session(
            registry.build("example", rounds=20),
            _request(5, spec.scope, jobs=2, batch_runs=batch_runs),
        )
        assert batched.data == serial.data, f"batch_runs={batch_runs} diverged"
        assert batched.data.to_json() == serial.data.to_json()


def test_batched_journal_resume_identity(tmp_path):
    from repro.harness.request import ResilienceConfig

    spec = registry.build("example", rounds=20)
    serial = run_profile_session(
        registry.build("example", rounds=20), _request(4, spec.scope, jobs=1),
    )
    path = str(tmp_path / "batched.journal")
    run_profile_session(
        registry.build("example", rounds=20),
        ProfileRequest(
            runs=4, coz_config=_small_cfg(spec.scope),
            execution=ExecutionConfig(jobs=2, batch_runs=4),
            resilience=ResilienceConfig(journal=path, stop_after_runs=2),
        ),
    )
    resumed = run_profile_session(
        registry.build("example", rounds=20),
        ProfileRequest(
            runs=4, coz_config=_small_cfg(spec.scope),
            execution=ExecutionConfig(jobs=2, batch_runs=4),
            resilience=ResilienceConfig(resume=path),
        ),
    )
    assert resumed.data == serial.data


# -- failure semantics -------------------------------------------------------------

def test_poisoned_run_splits_batch_and_session_completes(injected_app):
    # one poisoned run inside a 4-run batch: the batch splits until the
    # poison is a singleton, which retries in the parent; the other three
    # runs complete from workers and the session's data matches serial
    spec = injected_app("_test_poisoned", _build_poisoned_seed)
    with pytest.warns(ParallelExecutionWarning, match="splitting"):
        out = run_profile_session(
            spec, _request(4, spec.scope, jobs=2, batch_runs=4),
        )
    assert len(out.data.runs) == 4
    serial = profile_app(
        spec, runs=4, coz_config=_small_cfg(spec.scope), jobs=1,
    )
    assert out.data == serial.data


def test_worker_killed_mid_batch_still_completes(injected_app):
    def _build_killer_seed(**kwargs):
        spec = build_example(rounds=3)
        inner = spec.build

        def build(seed):
            if seed == 1 and _in_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            return inner(seed)

        spec.build = build
        return spec

    spec = injected_app("_test_batch_killer", _build_killer_seed)
    with pytest.warns(ParallelExecutionWarning):
        out = run_profile_session(
            spec, _request(4, spec.scope, jobs=2, batch_runs=2),
        )
    assert len(out.data.runs) == 4


# -- picklability probe ------------------------------------------------------------

def test_picklability_probed_once_per_task_shape(monkeypatch):
    calls = []
    real_dumps = pickle.dumps

    def counting_dumps(obj, *args, **kwargs):
        calls.append(obj)
        return real_dumps(obj, *args, **kwargs)

    clear_probe_cache()
    monkeypatch.setattr(parallel.pickle, "dumps", counting_dumps)
    spec = registry.build("example", rounds=20)
    cfg = _small_cfg(spec.scope)
    profile_app(spec, runs=3, coz_config=cfg, jobs=2)
    probes_first = len(calls)
    # the whole session probes one representative task, not one per run
    assert probes_first <= 1
    profile_app(registry.build("example", rounds=20), runs=3, coz_config=cfg, jobs=2)
    # a second session with the same task shape hits the probe cache
    assert len(calls) == probes_first


def test_unpicklable_factory_still_degrades_to_serial():
    clear_probe_cache()
    spec = build_example(rounds=20)
    assert spec.registry_ref is None
    cfg = _small_cfg(spec.scope)
    with pytest.warns(ParallelExecutionWarning, match="not picklable"):
        fanned = profile_app(spec, runs=2, coz_config=cfg, jobs=2)
    serial = profile_app(spec, runs=2, coz_config=cfg, jobs=1)
    assert fanned.data == serial.data


# -- worker-side caches ------------------------------------------------------------

def test_cached_build_memoizes_and_invalidates():
    from repro.apps.registry import cached_build, clear_spec_cache

    clear_spec_cache()
    ref = registry.build("example", rounds=20).registry_ref
    first = cached_build(ref)
    assert cached_build(ref) is first
    # re-registering the name must drop the memoized spec: tests and
    # third-party apps replace builders in place
    registry.register("_test_cache_probe", lambda **kw: build_example(rounds=3))
    try:
        probe_ref = registry.build("_test_cache_probe").registry_ref
        probe_spec = cached_build(probe_ref)
        registry.register(
            "_test_cache_probe", lambda **kw: build_example(rounds=5),
            replace=True,
        )
        assert cached_build(probe_ref) is not probe_spec
    finally:
        registry.unregister("_test_cache_probe")
    assert cached_build(ref) is first  # unrelated names stay cached
